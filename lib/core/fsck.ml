module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

let m_runs = Obs.counter "fs.fsck.runs"
let m_findings = Obs.counter "fs.fsck.findings"
let m_violations = Obs.counter "fs.fsck.violations"

(* A finding is advisory damage: something the self-healing machinery
   (label checks, the hint ladder, the patrol, the scavenger) repairs or
   tolerates without data loss. A violation is a broken promise: state
   recovery claims cannot exist — a catalogued file that does not read,
   a descriptor that does not mount. The crash harness gates violations
   at zero; findings it merely reports. *)
type issue = { i_class : string; i_addr : int option; i_detail : string }

type counts = {
  sectors : int;
  live : int;
  free : int;
  marked_bad : int;
  bad_media : int;
  garbage : int;
  files : int;  (** Distinct file ids holding a parseable leader. *)
  catalogued : int;  (** Root entries that named a real file. *)
  orphans : int;
}

type report = {
  counts : counts;
  descriptor_ok : bool;
  dirty : bool;
      (** The descriptor's unsafe-shutdown flag: acknowledged delayed
          writes may not have reached the platter, and bounded recovery
          is due. Reported, not a violation — a live volume mid-workload
          is legitimately dirty. *)
  findings : issue list;
  violations : issue list;
  duration_us : int;
}

let clean r =
  r.descriptor_ok && (not r.dirty) && r.findings = [] && r.violations = []

(* {2 The passes}

   All reads are ordinary timed operations through {!Audit.read_slice}
   (one whole-pack elevator batch) and {!Sweep}; nothing here writes.
   The checker needs no live [System] and no readable descriptor: given
   wreckage it still sweeps the labels and reports on the wreck — the
   descriptor-dependent passes (map, catalogue) just report the mount
   failure and stand down. *)

let check ?(verify_values = true) drive =
  Obs.incr m_runs;
  let t0 = Alto_machine.Sim_clock.now_us (Drive.clock drive) in
  let n = Drive.sector_count drive in
  let findings = ref [] in
  let violations = ref [] in
  let finding ?addr cls fmt = Format.kasprintf
      (fun d -> findings := { i_class = cls; i_addr = addr; i_detail = d } :: !findings)
      fmt
  in
  let violation ?addr cls fmt = Format.kasprintf
      (fun d -> violations := { i_class = cls; i_addr = addr; i_detail = d } :: !violations)
      fmt
  in
  (* Pass 1: sweep every label (§3.5's first move, reused verbatim). *)
  let sweep = Sweep.run drive in
  let live = ref 0 and free = ref 0 and marked_bad = ref 0 in
  let bad_media = ref 0 and garbage = ref 0 in
  Array.iteri
    (fun i cls ->
      match cls with
      | Sweep.Live _ -> incr live
      | Sweep.Free_sector -> incr free
      | Sweep.Marked_bad -> incr marked_bad
      | Sweep.Bad_media -> incr bad_media
      | Sweep.Garbage msg ->
          incr garbage;
          (* DA 0 is the boot sector: [format] reserves it without a
             label, and a booted system parks a boot image there, so an
             unparseable label at 0 is the healthy state, not damage. *)
          if i <> 0 then finding ~addr:i "garbage-label" "unparseable label (%s)" msg)
    sweep.Sweep.classes;
  (* Pass 2: index the live labels by absolute name. Two sectors both
     claiming one (file, page) is a crash caught mid-move (relocation or
     compaction died between copy and retire); the chain links
     disambiguate the real one, the other is a leak for the scavenger. *)
  let pages : (File_id.t, (int, int list) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let label_at : Label.t option array = Array.make n None in
  Array.iteri
    (fun i cls ->
      match cls with
      | Sweep.Live label ->
          label_at.(i) <- Some label;
          let per_file =
            match Hashtbl.find_opt pages label.Label.fid with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 8 in
                Hashtbl.add pages label.Label.fid h;
                h
          in
          let prior = Option.value ~default:[] (Hashtbl.find_opt per_file label.Label.page) in
          if prior <> [] then
            finding ~addr:i "cross-linked" "duplicate claim on (%a, %d)" File_id.pp
              label.Label.fid label.Label.page;
          Hashtbl.replace per_file label.Label.page (i :: prior)
      | _ -> ())
    sweep.Sweep.classes;
  (* Pass 3: mount the descriptor read-only. Mount failure is a
     violation — recovery always ends with a mountable pack — but the
     label-level passes above have already run, so the report still
     describes the wreck. *)
  let mounted = match Fs.mount drive with Ok fs -> Some fs | Error _ -> None in
  let descriptor_ok = mounted <> None in
  if not descriptor_ok then
    violation "descriptor" "the disk descriptor does not mount; scavenge required";
  let dirty = match mounted with Some fs -> Fs.dirty fs | None -> false in
  (* Pass 4: the allocation map against the labels. Both lie classes are
     findings, not violations: a free-in-map live page is caught by the
     label check before any damage ("a little extra one-time disk
     activity"), and a busy-in-map free page is merely lost until swept. *)
  (match mounted with
  | None -> ()
  | Some fs ->
      (* From 1: DA 0 is the boot sector, reserved by [format] and held
         busy in the map without ever carrying a label. *)
      for i = 1 to n - 1 do
        let addr = Disk_address.of_index i in
        let map_free = Fs.is_free_in_map fs addr in
        let quarantined = Fs.quarantined fs addr || Fs.spilled fs addr in
        match sweep.Sweep.classes.(i) with
        | Sweep.Live _ when map_free ->
            finding ~addr:i "map-lie-busy" "live page marked free in the map"
        | Sweep.Free_sector when (not map_free) && not quarantined ->
            finding ~addr:i "map-lie-free" "free page marked busy in the map"
        | (Sweep.Marked_bad | Sweep.Bad_media) when map_free ->
            finding ~addr:i "bad-not-protected"
              "bad sector free in the map (allocator may probe it)"
        | _ -> ()
      done);
  (* Pass 5: the catalogue. Every root entry must name a file whose
     page 0 exists; a dangling entry is a promise ls makes and open
     breaks. *)
  let catalogued : (File_id.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let catalogued_count = ref 0 in
  (match mounted with
  | None -> ()
  | Some fs -> (
      if Fs.root_dir fs = None then
        violation "root" "the descriptor names no root directory"
      else
        match Directory.open_root fs with
        | Error e ->
            violation "root" "the root directory does not open: %a" Directory.pp_error e
        | Ok root -> (
            match Directory.entries root with
            | Error e ->
                violation "root" "the root directory does not read: %a"
                  Directory.pp_error e
            | Ok entries ->
                Hashtbl.replace catalogued File_id.root_directory ();
                List.iter
                  (fun (e : Directory.entry) ->
                    let fn = e.Directory.entry_file in
                    let fid = fn.Page.abs.Page.fid in
                    match Hashtbl.find_opt pages fid with
                    | None ->
                        violation "dangling-entry" "%S names a file with no pages"
                          e.Directory.entry_name
                    | Some per_file -> (
                        incr catalogued_count;
                        Hashtbl.replace catalogued fid ();
                        match Hashtbl.find_opt per_file 0 with
                        | None | Some [] ->
                            violation "dangling-entry" "%S names a headless file"
                              e.Directory.entry_name
                        | Some addrs ->
                            if
                              Disk_address.is_nil fn.Page.addr
                              || not
                                   (List.mem
                                      (Disk_address.to_index fn.Page.addr)
                                      addrs)
                            then
                              finding "stale-entry-address"
                                "%S hints a wrong leader address"
                                e.Directory.entry_name))
                  entries)));
  Hashtbl.replace catalogued File_id.descriptor ();
  (* Pass 6: file structure. A catalogued file must be whole — leader
     parseable, pages 0..last contiguous; the same damage on an
     uncatalogued file is only a leaked fragment awaiting adoption. *)
  let files = ref 0 in
  let orphans = ref 0 in
  let is_catalogued fid = Hashtbl.mem catalogued fid in
  let sev fid = if is_catalogued fid then violation else finding in
  Hashtbl.iter
    (fun fid per_file ->
      let max_page = Hashtbl.fold (fun p _ acc -> max p acc) per_file (-1) in
      let headless = not (Hashtbl.mem per_file 0) in
      if headless then begin
        (sev fid) "headless-file" "%a has pages but no leader" File_id.pp fid;
        if not (is_catalogued fid) then incr orphans
      end
      else begin
        incr files;
        if (not (is_catalogued fid)) && mounted <> None then begin
          incr orphans;
          finding "orphan" "%a is catalogued nowhere (scavenger will adopt it)"
            File_id.pp fid
        end;
        for p = 0 to max_page do
          match Hashtbl.find_opt per_file p with
          | None | Some [] ->
              (sev fid) "broken-chain" "%a is missing page %d of %d" File_id.pp fid p
                max_page
          | Some (_ :: _ as addrs) -> (
              (* Link hints between consecutive single-claim pages; a
                 wrong hint costs a ladder climb, not data. *)
              let single = function [ a ] -> Some a | _ -> None in
              match
                ( single addrs,
                  Option.bind (Hashtbl.find_opt per_file (p + 1)) single )
              with
              | Some a, Some next_addr -> (
                  match label_at.(a) with
                  | Some l
                    when Disk_address.is_nil l.Label.next
                         || Disk_address.to_index l.Label.next <> next_addr ->
                      finding ~addr:a "stale-link" "%a page %d next-hint is wrong"
                        File_id.pp fid p
                  | _ -> ())
              | _ -> ())
        done
      end)
    pages;
  (* Pass 7: the data itself. One whole-pack elevator batch of
     label+value reads (the audit's slice machinery); any live page that
     will not read back — torn by a crash, or decayed — is data loss if
     a catalogued file owns it, a leaked fragment otherwise. *)
  if verify_values then begin
    let fs_for_reads =
      match mounted with Some fs -> fs | None -> Fs.create_unmounted drive
    in
    let slice = Audit.read_slice fs_for_reads ~start:0 ~k:n in
    Array.iteri
      (fun j index ->
        match label_at.(index) with
        | None -> ()
        | Some label ->
            if not (Audit.sector_ok slice j) then
              (sev label.Label.fid)
                ~addr:index
                (if Drive.is_torn drive (Disk_address.of_index index) then
                   "torn-page"
                 else "unreadable-page")
                "%a page %d will not read back" File_id.pp label.Label.fid
                label.Label.page)
      slice.Audit.indexes
  end;
  let report =
    {
      counts =
        {
          sectors = n;
          live = !live;
          free = !free;
          marked_bad = !marked_bad;
          bad_media = !bad_media;
          garbage = !garbage;
          files = !files;
          catalogued = !catalogued_count;
          orphans = !orphans;
        };
      descriptor_ok;
      dirty;
      findings = List.rev !findings;
      violations = List.rev !violations;
      duration_us = Alto_machine.Sim_clock.now_us (Drive.clock drive) - t0;
    }
  in
  Obs.add m_findings (List.length report.findings);
  Obs.add m_violations (List.length report.violations);
  report

let pp_issue fmt i =
  match i.i_addr with
  | Some a -> Format.fprintf fmt "%s @@ %d: %s" i.i_class a i.i_detail
  | None -> Format.fprintf fmt "%s: %s" i.i_class i.i_detail

let pp_report fmt r =
  let c = r.counts in
  Format.fprintf fmt
    "@[<v>fsck: %d sectors: %d live, %d free, %d marked bad, %d bad media, %d garbage"
    c.sectors c.live c.free c.marked_bad c.bad_media c.garbage;
  Format.fprintf fmt "@,fsck: %d files (%d catalogued, %d orphaned), descriptor %s%s"
    c.files c.catalogued c.orphans
    (if r.descriptor_ok then "ok" else "UNMOUNTABLE")
    (if r.dirty then ", volume dirty (delayed writes may be lost; recovery due)"
     else "");
  List.iter (fun i -> Format.fprintf fmt "@,fsck: violation: %a" pp_issue i) r.violations;
  List.iter (fun i -> Format.fprintf fmt "@,fsck: finding: %a" pp_issue i) r.findings;
  Format.fprintf fmt "@,fsck: verdict %s@]"
    (if r.violations <> [] then "damaged"
     else if clean r then "clean"
     else "consistent with findings")
