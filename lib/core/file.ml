module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address

type t = {
  fs : Fs.t;
  fid : File_id.t;
  mutable leader_addr : Disk_address.t;
  mutable leader : Leader.t;
  mutable hints : Disk_address.t array;  (* index = page number; nil = unknown *)
  mutable last_page : int;
  mutable last_length : int;
}

type error =
  | Hint_failed
  | No_such_page of int
  | Fs_error of Fs.error
  | Structure of string

let pp_error fmt = function
  | Hint_failed -> Format.pp_print_string fmt "hint failed, consult a directory or the scavenger"
  | No_such_page pn -> Format.fprintf fmt "no page %d in this file" pn
  | Fs_error e -> Fs.pp_error fmt e
  | Structure msg -> Format.fprintf fmt "file structure damaged: %s" msg

let fs t = t.fs
let fid t = t.fid
let leader t = t.leader
let last_page t = t.last_page

let leader_name t = Page.full_name t.fid ~page:0 ~addr:t.leader_addr

let byte_length t =
  if t.last_page = 0 then 0
  else (Sector.bytes_per_page * (t.last_page - 1)) + t.last_length

(* {2 Hint cache} *)

let ensure_hints t pn =
  let n = Array.length t.hints in
  if pn >= n then begin
    let bigger = Array.make (max (pn + 1) (2 * n)) Disk_address.nil in
    Array.blit t.hints 0 bigger 0 n;
    t.hints <- bigger
  end

let set_hint t pn addr =
  if pn >= 0 && not (Disk_address.is_nil addr) then begin
    ensure_hints t pn;
    t.hints.(pn) <- addr
  end

let hint t pn = if pn < Array.length t.hints then t.hints.(pn) else Disk_address.nil

let clear_hint t pn = if pn >= 1 && pn < Array.length t.hints then t.hints.(pn) <- Disk_address.nil

let invalidate_hints t =
  for pn = 1 to Array.length t.hints - 1 do
    t.hints.(pn) <- Disk_address.nil
  done

let retain_hints t ~every =
  if every < 1 then invalid_arg "File.retain_hints: every must be >= 1";
  for pn = 1 to Array.length t.hints - 1 do
    if pn mod every <> 0 then t.hints.(pn) <- Disk_address.nil
  done

let hinted_pages t =
  let n = ref 0 in
  for pn = 1 to min t.last_page (Array.length t.hints - 1) do
    if not (Disk_address.is_nil t.hints.(pn)) then incr n
  done;
  !n

let cache_links t pn (label : Label.t) =
  set_hint t (pn + 1) label.Label.next;
  if pn > 0 then set_hint t (pn - 1) label.Label.prev

(* {2 Resolving page numbers to full names} *)

let drive t = Fs.drive t.fs
let cache t = Fs.label_cache t.fs
let bio t = Fs.bio t.fs

(* Walk the link chain from the highest trusted hint at or below
   [target]. A stale in-chain hint triggers one restart from the leader
   with the intermediate hints cleared; if the leader itself fails the
   check, the whole handle is stale. *)
let chase t ~target =
  let rec start restarted =
    let rec highest k =
      if k <= 0 then 0
      else if Disk_address.is_nil (hint t k) then highest (k - 1)
      else k
    in
    let rec step k addr =
      if k = target then Ok addr
      else
        let fn = Page.full_name t.fid ~page:k ~addr in
        match Page.read_label ~cache:(cache t) ~bio:(bio t) (drive t) fn with
        | Ok label -> (
            cache_links t k label;
            match label.Label.next with
            | a when Disk_address.is_nil a ->
                Error (Structure (Printf.sprintf "chain ends at page %d before page %d" k target))
            | a -> step (k + 1) a)
        | Error (Page.Hint_failed _) ->
            if k = 0 || restarted then Error Hint_failed
            else begin
              invalidate_hints t;
              start true
            end
        | Error (Page.Bad_label msg) -> Error (Structure msg)
    in
    let k = highest target in
    if k = 0 then step 0 t.leader_addr else step k (hint t k)
  in
  start false

let page_name t pn =
  if pn < 0 then invalid_arg "File.page_name: negative page number"
  else if pn > t.last_page then Error (No_such_page pn)
  else if pn = 0 then Ok (leader_name t)
  else
    let h = hint t pn in
    if not (Disk_address.is_nil h) then Ok (Page.full_name t.fid ~page:pn ~addr:h)
    else
      match chase t ~target:pn with
      | Ok addr ->
          set_hint t pn addr;
          Ok (Page.full_name t.fid ~page:pn ~addr)
      | Error e -> Error e

(* Run a page operation, re-deriving the address once if its hint turns
   out stale. *)
let with_page t pn f =
  let ( let* ) = Result.bind in
  let* fn = page_name t pn in
  match f fn with
  | Ok x -> Ok x
  | Error (Page.Bad_label msg) -> Error (Structure msg)
  | Error (Page.Hint_failed _) -> (
      clear_hint t pn;
      let* fn = page_name t pn in
      match f fn with
      | Ok x -> Ok x
      | Error (Page.Bad_label msg) -> Error (Structure msg)
      | Error (Page.Hint_failed _) -> Error Hint_failed)

(* {2 Batched transfers}

   When the addresses of a whole run of pages are already known in core —
   from hints, extended by consecutive-allocation arithmetic where the
   leader vouches for it ("a program … is free to assume that a file is
   consecutive", §3.6) — the run can go to the disk as one elevator
   batch instead of page-at-a-time. Every batched request still checks
   the label against the page's absolute name, so a wrong guess costs
   one refuted request, repaired through the ordinary hint-ladder path. *)

let batch_threshold = 4

let known_addresses t ~first ~last =
  let sectors = Drive.sector_count (drive t) in
  let addrs = Array.make (last - first + 1) Disk_address.nil in
  let all_known = ref true in
  let consecutive = t.leader.Leader.maybe_consecutive in
  for pn = first to last do
    let a = hint t pn in
    let a =
      if not (Disk_address.is_nil a) then a
      else if consecutive then
        (* Extrapolate from the nearest hinted page below; page 0 (the
           leader) is always hinted, so the scan terminates. *)
        let rec from k =
          if k < 0 then Disk_address.nil
          else
            let h = hint t k in
            if Disk_address.is_nil h then from (k - 1)
            else
              let i = Disk_address.to_index h + (pn - k) in
              if i < sectors then Disk_address.of_index i else Disk_address.nil
        in
        from (pn - 1)
      else Disk_address.nil
    in
    if Disk_address.is_nil a then all_known := false else addrs.(pn - first) <- a
  done;
  if !all_known then Some addrs else None

(* {2 Opening and creating} *)

let now t = Fs.now_seconds t.fs

let open_leader fs (fn : Page.full_name) =
  let ( let* ) = Result.bind in
  if fn.Page.abs.Page.page <> 0 then
    invalid_arg "File.open_leader: not the name of a leader page";
  let* label, value =
    match Page.read ~cache:(Fs.label_cache fs) ~bio:(Fs.bio fs) (Fs.drive fs) fn with
    | Ok x -> Ok x
    | Error (Page.Hint_failed _) -> Error Hint_failed
    | Error (Page.Bad_label msg) -> Error (Structure msg)
  in
  let* leader =
    match Leader.of_value value with Ok l -> Ok l | Error msg -> Error (Structure msg)
  in
  let t =
    {
      fs;
      fid = fn.Page.abs.Page.fid;
      leader_addr = fn.Page.addr;
      leader;
      hints = Array.make 8 Disk_address.nil;
      last_page = 0;
      last_length = 0;
    }
  in
  set_hint t 0 fn.Page.addr;
  cache_links t 0 label;
  (* Trust the leader's last-page hint if the label there confirms it;
     otherwise count the chain the slow way. *)
  let confirm_last pn addr =
    if pn < 1 || Disk_address.is_nil addr then None
    else
      match Page.read_label ~cache:(cache t) ~bio:(bio t) (drive t) (Page.full_name t.fid ~page:pn ~addr) with
      | Ok label when Disk_address.is_nil label.Label.next ->
          Some (pn, label.Label.length)
      | Ok _ | Error _ -> None
  in
  let* last_pn, last_len =
    match confirm_last leader.Leader.last_page leader.Leader.last_addr with
    | Some (pn, len) ->
        set_hint t pn leader.Leader.last_addr;
        Ok (pn, len)
    | None ->
        (* Chain walk from the leader to the end. *)
        let rec walk pn addr =
          match Page.read_label ~cache:(cache t) ~bio:(bio t) (drive t) (Page.full_name t.fid ~page:pn ~addr) with
          | Error (Page.Hint_failed _) -> Error Hint_failed
          | Error (Page.Bad_label msg) -> Error (Structure msg)
          | Ok label -> (
              cache_links t pn label;
              match label.Label.next with
              | a when Disk_address.is_nil a ->
                  if pn = 0 then Ok (0, 0) else Ok (pn, label.Label.length)
              | a -> walk (pn + 1) a)
        in
        walk 0 t.leader_addr
  in
  t.last_page <- last_pn;
  t.last_length <- last_len;
  Ok t

let create_with_fid fs fid ~name =
  let ( let* ) = Result.bind in
  let wrap = Result.map_error (fun e -> Fs_error e) in
  let created_s = int_of_float (Alto_machine.Sim_clock.now_seconds (Fs.clock fs)) in
  (* Leader first (next link set afterwards), then the empty data page,
     then the leader's label learns the data page's address. The next
     link is only a hint, so a crash anywhere here leaves nothing
     dangerous behind. *)
  let leader0 =
    Leader.make ~created_s ~written_s:created_s ~name ~last_page:1
      ~last_addr:Disk_address.nil ~maybe_consecutive:true ()
  in
  let* leader_addr =
    wrap
      (Fs.allocate_page fs
         ~label:(fun _ ->
           Label.make ~fid ~page:0 ~length:Sector.bytes_per_page
             ~next:Disk_address.nil ~prev:Disk_address.nil)
         ~value:(Leader.to_value leader0))
  in
  let* page1_addr =
    wrap
      (Fs.allocate_page fs
         ~label:(fun _ ->
           Label.make ~fid ~page:1 ~length:0 ~next:Disk_address.nil ~prev:leader_addr)
         ~value:(Array.make Sector.value_words Word.zero))
  in
  let leader = Leader.with_last leader0 ~last_page:1 ~last_addr:page1_addr in
  let leader_label =
    Label.make ~fid ~page:0 ~length:Sector.bytes_per_page ~next:page1_addr
      ~prev:Disk_address.nil
  in
  let* () =
    match
      Page.rewrite_label ~cache:(Fs.label_cache fs) ~bio:(Fs.bio fs) (Fs.drive fs)
        (Page.full_name fid ~page:0 ~addr:leader_addr)
        ~new_label:leader_label ~value:(Leader.to_value leader)
    with
    | Ok () -> Ok ()
    | Error (Page.Hint_failed _) -> Error Hint_failed
    | Error (Page.Bad_label msg) -> Error (Structure msg)
  in
  let t =
    {
      fs;
      fid;
      leader_addr;
      leader;
      hints = Array.make 8 Disk_address.nil;
      last_page = 1;
      last_length = 0;
    }
  in
  set_hint t 0 leader_addr;
  set_hint t 1 page1_addr;
  Ok t

let create fs ~name = create_with_fid fs (Fs.fresh_fid fs) ~name

let create_with_id fs fid ~name = create_with_fid fs fid ~name

let create_directory_file fs ~name =
  create_with_fid fs (Fs.fresh_fid ~directory:true fs) ~name

(* {2 Reading} *)

let read_page t pn =
  if pn < 1 then invalid_arg "File.read_page: data pages are numbered from 1"
  else
    let ( let* ) = Result.bind in
    let* label, value = with_page t pn (fun fn -> Page.read ~cache:(cache t) ~bio:(bio t) (drive t) fn) in
    cache_links t pn label;
    if pn = t.last_page then t.last_length <- label.Label.length;
    Ok (value, label.Label.length)

let bytes_of_page value ~page_off ~len ~dst ~dst_off =
  for j = 0 to len - 1 do
    let b = page_off + j in
    let w = value.(b / 2) in
    Bytes.set dst (dst_off + j)
      (Char.chr (if b mod 2 = 0 then Word.high_byte w else Word.low_byte w))
  done

let touch_written t =
  t.leader <- Leader.with_times t.leader ~written_s:(now t) ()

let touch_read t =
  t.leader <- Leader.with_times t.leader ~read_s:(now t) ()

(* One elevator pass of label-checked value reads for pages
   [first .. first + n - 1] at [addrs]; a refuted or failed request
   falls back to the ordinary one-page path for that page alone.

   With the track buffer cache enabled the batching is the cache's:
   each miss pulls its whole track through the shared elevator in one
   fill, the rest of the run is answered from core, and the track stays
   resident for the next reader. The hand-rolled request batch remains
   as the disabled-cache path (and the experiments' ablation). *)
let read_pages_batched t ~first addrs =
  let n = Array.length addrs in
  let ( let* ) = Result.bind in
  if Bio.enabled (bio t) then begin
    let rec collect i acc =
      if i >= n then Ok (Array.of_list (List.rev acc))
      else begin
        let pn = first + i in
        (* The caller already resolved the addresses; seed the hints so
           the per-page path spends no operations re-chasing them. *)
        set_hint t pn addrs.(i);
        let* v, plen = read_page t pn in
        collect (i + 1) ((v, plen) :: acc)
      end
    in
    collect 0 []
  end
  else begin
    let values = Array.init n (fun _ -> Array.make Sector.value_words Word.zero) in
    let labels = Array.init n (fun i -> Label.check_name t.fid ~page:(first + i)) in
    let requests =
      Array.init n (fun i ->
          Sched.request ~label:labels.(i) ~value:values.(i) addrs.(i)
            { Drive.op_none with label = Some Drive.Check; value = Some Drive.Read })
    in
    let outcomes = Sched.run_batch (drive t) requests in
    let rec collect i acc =
      if i >= n then Ok (Array.of_list (List.rev acc))
      else
        let pn = first + i in
        let fallback () =
          let* v, plen = read_page t pn in
          collect (i + 1) ((v, plen) :: acc)
        in
        match outcomes.(i).Sched.result with
        | Error _ -> fallback ()
        | Ok () -> (
            match Label.of_words labels.(i) with
            | Error _ -> fallback ()
            | Ok label ->
                Label_cache.note_verified (cache t) addrs.(i) labels.(i);
                set_hint t pn addrs.(i);
                cache_links t pn label;
                if pn = t.last_page then t.last_length <- label.Label.length;
                collect (i + 1) ((values.(i), label.Label.length) :: acc))
    in
    collect 0 []
  end

let read_bytes t ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "File.read_bytes: negative position or length";
  let total = byte_length t in
  let n = max 0 (min len (total - pos)) in
  let dst = Bytes.create n in
  let ( let* ) = Result.bind in
  if n = 0 then Ok dst
  else begin
    let first = 1 + (pos / Sector.bytes_per_page) in
    let last = 1 + ((pos + n - 1) / Sector.bytes_per_page) in
    let* prefetched =
      if last - first + 1 >= batch_threshold then
        match known_addresses t ~first ~last with
        | Some addrs -> Result.map Option.some (read_pages_batched t ~first addrs)
        | None -> Ok None
      else Ok None
    in
    let page pn =
      match prefetched with
      | Some pages -> Ok pages.(pn - first)
      | None -> read_page t pn
    in
    let rec loop pn page_off dst_off =
      if dst_off >= n then Ok dst
      else
        let* value, plen = page pn in
        let here = min (plen - page_off) (n - dst_off) in
        if here <= 0 then
          Error (Structure (Printf.sprintf "page %d shorter than the file length implies" pn))
        else begin
          bytes_of_page value ~page_off ~len:here ~dst ~dst_off;
          loop (pn + 1) 0 (dst_off + here)
        end
    in
    let result = loop first (pos mod Sector.bytes_per_page) 0 in
    if Result.is_ok result then touch_read t;
    result
  end

(* {2 Planned whole-file reads}

   A server activity wants the whole file but must not hold the machine
   while the disk turns: it asks for a plan (the label-checked value
   reads for every data page, as one request set), parks the requests on
   the standing elevator queue alongside every other conversation's, and
   assembles the bytes when the shared sweep has completed them. The
   split is exactly {!read_pages_batched} pulled apart at the disk
   wait. *)

type read_plan = {
  plan_file : t;
  plan_total : int;
  plan_labels : Word.t array array;
  plan_values : Word.t array array;
  plan_addrs : Disk_address.t array;
  plan_requests : Sched.request array;
  plan_slots : int array;
      (* [plan_requests.(j)] covers page index [plan_slots.(j)]: pages
         buffered in the track cache at plan time park no request and
         are served from core at assembly time instead. *)
}

let plan_requests p = p.plan_requests

let plan_read t =
  let total = byte_length t in
  if total = 0 then Ok None
  else begin
    let last = t.last_page in
    (* Addresses from hints (extrapolated where the leader vouches for
       consecutive allocation), completed by chasing links — the chase
       is synchronous metadata work charged to this conversation's turn;
       the data pages themselves all travel in the shared sweep. *)
    let addrs =
      match known_addresses t ~first:1 ~last with
      | Some addrs -> Ok addrs
      | None ->
          let ( let* ) = Result.bind in
          let rec collect pn acc =
            if pn > last then Ok (Array.of_list (List.rev acc))
            else
              let* fn = page_name t pn in
              collect (pn + 1) (fn.Page.addr :: acc)
          in
          collect 1 []
    in
    match addrs with
    | Error e -> Error e
    | Ok addrs ->
        let n = Array.length addrs in
        let values = Array.init n (fun _ -> Array.make Sector.value_words Word.zero) in
        let labels = Array.init n (fun i -> Label.check_name t.fid ~page:(1 + i)) in
        (* Pages whose sectors sit in the track buffer cache right now
           need no disk request at all; only the misses park on the
           elevator. A buffer that dies between plan and assembly costs
           that page one ordinary synchronous read — the same fallback a
           refuted request pays. *)
        let slots =
          let b = bio t in
          let acc = ref [] in
          for i = n - 1 downto 0 do
            if Bio.peek b addrs.(i) = None then acc := i :: !acc
          done;
          Array.of_list !acc
        in
        let requests =
          Array.map
            (fun i ->
              Sched.request ~label:labels.(i) ~value:values.(i) addrs.(i)
                { Drive.op_none with label = Some Drive.Check; value = Some Drive.Read })
            slots
        in
        Ok
          (Some
             {
               plan_file = t;
               plan_total = total;
               plan_labels = labels;
               plan_values = values;
               plan_addrs = addrs;
               plan_requests = requests;
               plan_slots = slots;
             })
  end

let finish_read p outcomes =
  let t = p.plan_file in
  let n = Array.length p.plan_addrs in
  if Array.length outcomes <> Array.length p.plan_requests then
    invalid_arg "File.finish_read: outcome count does not match the plan";
  let ( let* ) = Result.bind in
  (* Re-index the outcomes by page: pages the plan served from the track
     buffer cache have no request, and read through the cache now. *)
  let outcome = Array.make n None in
  Array.iteri
    (fun j i -> outcome.(i) <- Some outcomes.(j).Sched.result)
    p.plan_slots;
  (* Per page: adopt the batched read, or fall back to the one-page path
     for that page alone — a refuted label costs one ordinary retry, and
     a buffer-served page whose track died since plan time costs one
     ordinary synchronous read. *)
  let rec collect i acc =
    if i >= n then Ok (Array.of_list (List.rev acc))
    else
      let pn = 1 + i in
      let fallback () =
        let* v, plen = read_page t pn in
        collect (i + 1) ((v, plen) :: acc)
      in
      match outcome.(i) with
      | None ->
          set_hint t pn p.plan_addrs.(i);
          fallback ()
      | Some (Error _) -> fallback ()
      | Some (Ok ()) -> (
          match Label.of_words p.plan_labels.(i) with
          | Error _ -> fallback ()
          | Ok label ->
              Label_cache.note_verified (cache t) p.plan_addrs.(i) p.plan_labels.(i);
              set_hint t pn p.plan_addrs.(i);
              cache_links t pn label;
              if pn = t.last_page then t.last_length <- label.Label.length;
              collect (i + 1) ((p.plan_values.(i), label.Label.length) :: acc))
  in
  let* pages = collect 0 [] in
  let dst = Bytes.create p.plan_total in
  let rec assemble pn dst_off =
    if dst_off >= p.plan_total then Ok (Bytes.to_string dst)
    else if pn > n then
      Error (Structure "file shorter than its leader implies")
    else
      let value, plen = pages.(pn - 1) in
      let here = min plen (p.plan_total - dst_off) in
      if here <= 0 then
        Error (Structure (Printf.sprintf "page %d shorter than the file length implies" pn))
      else begin
        bytes_of_page value ~page_off:0 ~len:here ~dst ~dst_off;
        assemble (pn + 1) (dst_off + here)
      end
  in
  let result = assemble 1 0 in
  if Result.is_ok result then touch_read t;
  result

(* {2 Writing} *)

let patch_page value ~page_off s ~s_off ~len =
  for j = 0 to len - 1 do
    let b = page_off + j in
    let w = Word.to_int value.(b / 2) in
    let byte = Char.code s.[s_off + j] in
    let w' = if b mod 2 = 0 then (w land 0x00ff) lor (byte lsl 8) else (w land 0xff00) lor byte in
    value.(b / 2) <- Word.of_int w'
  done

let update_leader_last t =
  t.leader <- Leader.with_last t.leader ~last_page:t.last_page ~last_addr:(hint t t.last_page)

(* Rewrite page [pn]'s label, preserving its links, with a new length
   and/or next link. *)
let rewrite_page t pn ~length ~next value =
  with_page t pn (fun fn ->
      let ( let* ) = Result.bind in
      let* old = Page.read_label ~cache:(cache t) ~bio:(bio t) (drive t) fn in
      let new_label =
        Label.make ~fid:t.fid ~page:pn ~length
          ~next:(Option.value next ~default:old.Label.next)
          ~prev:old.Label.prev
      in
      Page.rewrite_label ~cache:(cache t) ~bio:(bio t) (drive t) fn ~new_label ~value)

let append_fresh_page t value ~len =
  let ( let* ) = Result.bind in
  let pn = t.last_page + 1 in
  let* prev_fn = page_name t t.last_page in
  let* addr =
    Result.map_error
      (fun e -> Fs_error e)
      (Fs.allocate_page t.fs
         ~label:(fun _ ->
           Label.make ~fid:t.fid ~page:pn ~length:len ~next:Disk_address.nil
             ~prev:prev_fn.Page.addr)
         ~value)
  in
  set_hint t pn addr;
  if not (Disk_address.equal addr (Disk_address.offset prev_fn.Page.addr 1)) then
    t.leader <- Leader.with_consecutive t.leader false;
  Ok (addr, pn)

(* One elevator pass of label-checked full-page value writes; a refuted
   or failed request falls back to the one-page path for that page. *)
let write_pages_batched t ~first addrs values =
  let n = Array.length addrs in
  let labels = Array.init n (fun i -> Label.check_name t.fid ~page:(first + i)) in
  let requests =
    Array.init n (fun i ->
        Sched.request ~label:labels.(i) ~value:values.(i) addrs.(i)
          { Drive.op_none with label = Some Drive.Check; value = Some Drive.Write })
  in
  let outcomes = Sched.run_batch (drive t) requests in
  let ( let* ) = Result.bind in
  let rec finish i =
    if i >= n then Ok ()
    else
      match outcomes.(i).Sched.result with
      | Ok () ->
          Label_cache.note_verified (cache t) addrs.(i) labels.(i);
          (* A value write moves no label generation, so a buffered copy
             of this sector would survive it stale — record the written
             value (supersedes any delayed write the buffer held). *)
          Bio.install (bio t) addrs.(i) ~label:labels.(i) ~value:values.(i);
          set_hint t (first + i) addrs.(i);
          finish (i + 1)
      | Error _ ->
          let* (_ : Label.t) =
            with_page t (first + i) (fun fn ->
                Page.write ~cache:(cache t) ~bio:(bio t) (drive t) fn values.(i))
          in
          finish (i + 1)
  in
  finish 0

let write_bytes t ~pos s =
  let total = byte_length t in
  if pos < 0 || pos > total then
    invalid_arg "File.write_bytes: position beyond end of file";
  let ( let* ) = Result.bind in
  let len = String.length s in
  (* [cached] avoids re-reading a page we just wrote when the loop
     immediately appends its successor. *)
  let cached = ref None in
  (* A long run of whole-page overwrites of existing pages — the shape
     of a world swap's outload — goes to the disk as one elevator batch
     before the page-at-a-time loop takes over for the remainder. *)
  let batched_prefix () =
    if pos mod Sector.bytes_per_page <> 0 then Ok (1 + (pos / Sector.bytes_per_page), 0)
    else begin
      let start_pn = 1 + (pos / Sector.bytes_per_page) in
      let rec extent pn s_off =
        if
          len - s_off >= Sector.bytes_per_page
          && (pn < t.last_page
             || (pn = t.last_page && t.last_length = Sector.bytes_per_page))
        then extent (pn + 1) (s_off + Sector.bytes_per_page)
        else pn
      in
      let stop = extent start_pn 0 in
      let count = stop - start_pn in
      if count < batch_threshold then Ok (start_pn, 0)
      else
        match known_addresses t ~first:start_pn ~last:(stop - 1) with
        | None -> Ok (start_pn, 0)
        | Some addrs ->
            let values =
              Array.init count (fun i ->
                  let v = Array.make Sector.value_words Word.zero in
                  patch_page v ~page_off:0 s ~s_off:(i * Sector.bytes_per_page)
                    ~len:Sector.bytes_per_page;
                  v)
            in
            let* () = write_pages_batched t ~first:start_pn addrs values in
            cached := Some (stop - 1, values.(count - 1));
            Ok (stop, count * Sector.bytes_per_page)
    end
  in
  let rec put pn page_off s_off =
    if s_off >= len then Ok ()
    else
      let here = min (Sector.bytes_per_page - page_off) (len - s_off) in
      let full_page_overwrite =
        page_off = 0
        && here = Sector.bytes_per_page
        && (pn < t.last_page || (pn = t.last_page && t.last_length = Sector.bytes_per_page))
      in
      if full_page_overwrite then begin
        (* The whole page is replaced and its length is unchanged: one
           label-checked value write, no read — this is what lets a world
           swap stream 64K words at full track speed. *)
        let value = Array.make Sector.value_words Word.zero in
        patch_page value ~page_off:0 s ~s_off ~len:here;
        let* (_ : Label.t) = with_page t pn (fun fn -> Page.write ~cache:(cache t) ~bio:(bio t) (drive t) fn value) in
        cached := Some (pn, value);
        put (pn + 1) 0 (s_off + here)
      end
      else if pn <= t.last_page then begin
        let* value, plen = read_page t pn in
        patch_page value ~page_off s ~s_off ~len:here;
        let* () =
          if pn < t.last_page then
            Result.map (fun (_ : Label.t) -> ())
              (with_page t pn (fun fn -> Page.write ~cache:(cache t) ~bio:(bio t) (drive t) fn value))
          else begin
            let new_plen = max plen (page_off + here) in
            if new_plen <> plen then begin
              let* () = rewrite_page t pn ~length:new_plen ~next:None value in
              t.last_length <- new_plen;
              Ok ()
            end
            else
              Result.map (fun (_ : Label.t) -> ())
                (with_page t pn (fun fn -> Page.write ~cache:(cache t) ~bio:(bio t) (drive t) fn value))
          end
        in
        cached := Some (pn, value);
        put (pn + 1) 0 (s_off + here)
      end
      else begin
        (* A brand-new page; the previous last page must be full. *)
        let value = Array.make Sector.value_words Word.zero in
        patch_page value ~page_off:0 s ~s_off ~len:here;
        let* addr, pn' = append_fresh_page t value ~len:here in
        (* Tell the old last page about its successor. When the file had
           no data pages at all, the "old last" is the leader itself. *)
        let old_last = t.last_page in
        let* old_value =
          match !cached with
          | Some (p, v) when p = old_last -> Ok v
          | Some _ | None ->
              let* _, v = with_page t old_last (fun fn -> Page.read ~cache:(cache t) ~bio:(bio t) (drive t) fn) in
              Ok v
        in
        let* () =
          rewrite_page t old_last ~length:Sector.bytes_per_page ~next:(Some addr)
            old_value
        in
        t.last_page <- pn';
        t.last_length <- here;
        cached := Some (pn', value);
        put (pn' + 1) 0 (s_off + here)
      end
  in
  let* start_pn, start_s_off = batched_prefix () in
  let page_off = if start_s_off = 0 then pos mod Sector.bytes_per_page else 0 in
  let* () = put start_pn page_off start_s_off in
  touch_written t;
  update_leader_last t;
  Ok ()

let append_bytes t s = write_bytes t ~pos:(byte_length t) s

(* {2 Shrinking} *)

let truncate t ~len =
  if len < 0 || len > byte_length t then
    invalid_arg "File.truncate: length out of range";
  let ( let* ) = Result.bind in
  let new_last = if len = 0 then 1 else 1 + ((len - 1) / Sector.bytes_per_page) in
  let rec free pn =
    if pn <= new_last then Ok ()
    else
      let* fn = page_name t pn in
      let* () = Result.map_error (fun e -> Fs_error e) (Fs.free_page t.fs fn) in
      clear_hint t pn;
      t.last_page <- pn - 1;
      free (pn - 1)
  in
  let* () = free t.last_page in
  let new_plen = len - (Sector.bytes_per_page * (new_last - 1)) in
  let* value, _ = read_page t new_last in
  (* Force the next link to NIL: new_plen describes the new last page. *)
  let* () =
    with_page t new_last (fun fn ->
        let ( let* ) = Result.bind in
        let* old = Page.read_label ~cache:(cache t) ~bio:(bio t) (drive t) fn in
        let new_label =
          Label.make ~fid:t.fid ~page:new_last ~length:new_plen
            ~next:Disk_address.nil ~prev:old.Label.prev
        in
        Page.rewrite_label ~cache:(cache t) ~bio:(bio t) (drive t) fn ~new_label ~value)
  in
  t.last_page <- new_last;
  t.last_length <- new_plen;
  touch_written t;
  update_leader_last t;
  Ok ()

let delete t =
  let ( let* ) = Result.bind in
  (* Resolve every page before freeing anything, so a chase never has to
     walk through a page we already freed. *)
  let rec resolve acc pn =
    if pn > t.last_page then Ok (List.rev acc)
    else
      let* fn = page_name t pn in
      resolve (fn :: acc) (pn + 1)
  in
  let* names = resolve [] 0 in
  let rec free = function
    | [] -> Ok ()
    | fn :: rest ->
        let* () = Result.map_error (fun e -> Fs_error e) (Fs.free_page t.fs fn) in
        free rest
  in
  let* () = free (List.rev names) in
  t.last_page <- 0;
  t.last_length <- 0;
  invalidate_hints t;
  Ok ()

(* {2 Word-granularity IO (for directories)} *)

let read_words t ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "File.read_words: negative position or length";
  match read_bytes t ~pos:(2 * pos) ~len:(2 * len) with
  | Error e -> Error e
  | Ok bytes ->
      let nbytes = Bytes.length bytes in
      let nwords = nbytes / 2 in
      Ok
        (Array.init nwords (fun i ->
             Word.of_char_pair (Bytes.get bytes (2 * i)) (Bytes.get bytes ((2 * i) + 1))))

let write_words t ~pos ws =
  write_bytes t ~pos:(2 * pos) (Word.string_of_words ws ~len:(2 * Array.length ws))

(* {2 Leader maintenance} *)

let flush_leader t =
  update_leader_last t;
  Result.map
    (fun (_ : Label.t) -> ())
    (with_page t 0 (fun fn -> Page.write ~cache:(cache t) ~bio:(bio t) (drive t) fn (Leader.to_value t.leader)))
