module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

let m_hits = Obs.counter "fs.label_cache.hits"
let m_misses = Obs.counter "fs.label_cache.misses"
let m_invalidations = Obs.counter "fs.label_cache.invalidations"

type entry = {
  words : Word.t array;  (* The verified 7-word label image. *)
  gen : int;  (* [Drive.label_generation] at verification time. *)
  mutable used : int;  (* LRU tick of the last hit. *)
}

type t = {
  drive : Drive.t;
  capacity : int;
  table : (int, entry) Hashtbl.t;  (* Keyed by flat sector index. *)
  mutable tick : int;
}

let create ?(capacity = 128) drive =
  if capacity < 1 then invalid_arg "Label_cache.create: capacity below 1";
  { drive; capacity; table = Hashtbl.create capacity; tick = 0 }

let drive t = t.drive
let length t = Hashtbl.length t.table

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let lookup t addr =
  let i = Disk_address.to_index addr in
  match Hashtbl.find_opt t.table i with
  | None ->
      Obs.incr m_misses;
      None
  | Some e ->
      if e.gen = Drive.label_generation t.drive addr then begin
        e.used <- next_tick t;
        Obs.incr m_hits;
        Some (Array.copy e.words)
      end
      else begin
        (* The drive saw a label write, a quarantine or retry evidence on
           this sector since we verified: the entry is dead. *)
        Hashtbl.remove t.table i;
        Obs.incr m_invalidations;
        Obs.incr m_misses;
        None
      end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun i e acc ->
        match acc with
        | Some (_, best) when best.used <= e.used -> acc
        | Some _ | None -> Some (i, e))
      t.table None
  in
  match victim with None -> () | Some (i, _) -> Hashtbl.remove t.table i

let note_verified t addr words =
  let i = Disk_address.to_index addr in
  if not (Hashtbl.mem t.table i) && Hashtbl.length t.table >= t.capacity then
    evict_lru t;
  Hashtbl.replace t.table i
    {
      words = Array.copy words;
      gen = Drive.label_generation t.drive addr;
      used = next_tick t;
    }

let invalidate t addr =
  let i = Disk_address.to_index addr in
  if Hashtbl.mem t.table i then begin
    Hashtbl.remove t.table i;
    Obs.incr m_invalidations
  end

let clear t =
  let n = Hashtbl.length t.table in
  if n > 0 then begin
    Hashtbl.reset t.table;
    Obs.add m_invalidations n
  end
