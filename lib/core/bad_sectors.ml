module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

let file_name = "BadSectors.table"
let magic = 0xBAD5

let m_spill_loaded = Obs.counter "fs.bad_spill.loaded"
let m_spill_flushes = Obs.counter "fs.bad_spill.flushes"

type error = Fs_error of Fs.error | File_error of File.error | Malformed of string

let pp_error fmt = function
  | Fs_error e -> Fs.pp_error fmt e
  | File_error e -> File.pp_error fmt e
  | Malformed what -> Format.fprintf fmt "bad-sector spill file malformed: %s" what

let find_file fs =
  match Directory.open_root fs with
  | Error (Directory.File_error e) -> Error (File_error e)
  | Error (Directory.Malformed m) -> Error (Malformed m)
  | Error (Directory.Name_too_long _) -> Error (Malformed "root directory")
  | Ok root -> (
      match Directory.lookup root file_name with
      | Error (Directory.File_error e) -> Error (File_error e)
      | Error (Directory.Malformed m) -> Error (Malformed m)
      | Error (Directory.Name_too_long _) -> Error (Malformed "lookup")
      | Ok None -> Ok None
      | Ok (Some entry) -> (
          match File.open_leader fs entry.Directory.entry_file with
          | Error e -> Error (File_error e)
          | Ok file -> Ok (Some file)))

let load fs =
  match find_file fs with
  | Error _ as e -> e
  | Ok None -> Ok 0
  | Ok (Some file) -> (
      match File.read_words file ~pos:0 ~len:2 with
      | Error e -> Error (File_error e)
      | Ok header ->
          if Array.length header < 2 then Error (Malformed "truncated header")
          else if Word.to_int header.(0) <> magic then Error (Malformed "magic")
          else
            let count = Word.to_int header.(1) in
            let n = Drive.sector_count (Fs.drive fs) in
            (match File.read_words file ~pos:2 ~len:count with
            | Error e -> Error (File_error e)
            | Ok entries ->
                if Array.length entries < count then
                  Error (Malformed "truncated table")
                else begin
                  let adopted = ref 0 in
                  Array.iter
                    (fun w ->
                      let i = Word.to_int w in
                      if i > 0 && i < n then begin
                        Fs.adopt_spilled fs (Disk_address.of_index i);
                        incr adopted
                      end)
                    entries;
                  Obs.add m_spill_loaded !adopted;
                  Ok !adopted
                end))

let write_table file spill =
  let count = List.length spill in
  let words = Array.make (2 + count) Word.zero in
  words.(0) <- Word.of_int_exn magic;
  words.(1) <- Word.of_int_exn count;
  List.iteri
    (fun i addr -> words.(2 + i) <- Word.of_int_exn (Disk_address.to_index addr))
    spill;
  match File.write_words file ~pos:0 words with
  | Error e -> Error (File_error e)
  | Ok () -> (
      match File.truncate file ~len:((2 + count) * 2) with
      | Error e -> Error (File_error e)
      | Ok () -> (
          match File.flush_leader file with
          | Error e -> Error (File_error e)
          | Ok () ->
              Obs.incr m_spill_flushes;
              Ok count))

let create_file fs =
  match File.create fs ~name:file_name with
  | Error e -> Error (File_error e)
  | Ok file -> (
      match Directory.open_root fs with
      | Error (Directory.File_error e) -> Error (File_error e)
      | Error (Directory.Malformed m) -> Error (Malformed m)
      | Error (Directory.Name_too_long _) -> Error (Malformed "root directory")
      | Ok root -> (
          match Directory.add root ~name:file_name (File.leader_name file) with
          | Error (Directory.File_error e) -> Error (File_error e)
          | Error (Directory.Malformed m) -> Error (Malformed m)
          | Error (Directory.Name_too_long _) -> Error (Malformed "name")
          | Ok () -> Ok file))

let flush fs =
  let spill = Fs.spilled_table fs in
  match find_file fs with
  | Error _ as e -> e
  | Ok (Some file) -> write_table file spill
  | Ok None ->
      if spill = [] then Ok 0
      else (
        match create_file fs with
        | Error _ as e -> e
        | Ok file -> write_table file spill)
