(** Slice digests and repair application — the patrol's cursor/slice
    read machinery, callable outside a live patrol lap.

    The online patrol (§11, PR 4) verifies the pack one elevator slice
    at a time. Replication (DESIGN §14) needs exactly that read path,
    but for a different consumer: replicas exchange per-slice digests of
    label+value content, vote, and stream whole page images from a
    winner to a loser. This module is the shared substrate: batched
    slice reads, a version-stable digest over them, and the write side —
    installing a peer's page image over a local sector under the same
    cache/generation discipline the patrol's relocations use.

    Digest stability: every slice read goes through {!Sched.run_batch}
    and therefore {!Reliable}, so transient (seeded soft-error) faults
    are absorbed before the digest sees the data — two replicas with
    byte-identical packs digest identically even while both their
    drives are lying transiently. *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Sched = Alto_disk.Sched

val reserved_top : Fs.t -> int
(** Highest fixed-address sector (boot page + descriptor file): sectors
    at or below this index are never relocated by the patrol, though
    replication repairs them in place like any other. *)

type slice = {
  start : int;  (** First sector index of the slice. *)
  indexes : int array;  (** Absolute sector index per entry (wraps). *)
  labels : Word.t array array;
  values : Word.t array array;
  outcomes : Sched.outcome array;
}

val read_slice : Fs.t -> start:int -> k:int -> slice
(** Read [k] sectors' labels and values starting at [start] (wrapping
    past the end of the pack) in one elevator batch. *)

val sector_ok : slice -> int -> bool
(** Did entry [j]'s batch read succeed (possibly after retries)? *)

val digest_of_slice : slice -> int64
val digest : Fs.t -> start:int -> k:int -> int64
(** FNV-1a over sector index, label and value words; a hard-failed
    sector folds a sentinel instead of its (unknown) content. Counted
    in [fs.audit.digests] / [fs.audit.sectors_digested]. *)

type apply_result =
  | Applied
  | Apply_failed of Drive.error
  | Verify_mismatch  (** The read-back after the write didn't match. *)

val apply_page :
  Fs.t -> index:int -> label:Word.t array -> value:Word.t array -> apply_result
(** Overwrite sector [index] with a peer's label+value image, verify by
    read-back, bump the label generation and evict the cached label, and
    re-point the in-core map from the new label's classification. Never
    flushes the descriptor: on-disk map/quarantine state is itself
    replicated content and arrives with the descriptor sectors' own
    repair. Counted in [fs.audit.pages_applied] /
    [fs.audit.apply_failures]. *)

val pp_apply_result : Format.formatter -> apply_result -> unit
