(** Pages and their names (§3.1), and the label-checked disk operations
    on them (§3.3).

    A page's {e absolute name} is (FV, n): file id, version, page number.
    Its {e hint name} is a disk address. The {e full name} is the pair;
    every disk access in the system quotes a full name, and the label
    check guarantees that "the hint (address) used to access a disk page
    actually leads to the page specified by the absolute part". *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address

type absolute = { fid : File_id.t; page : int }

type full_name = { abs : absolute; addr : Disk_address.t }

val full_name : File_id.t -> page:int -> addr:Disk_address.t -> full_name
val pp_full_name : Format.formatter -> full_name -> unit

val next_name : full_name -> Label.t -> full_name option
(** The full name of the following page, built from a just-read label —
    "it is easy to go from the full name of a page to the full names of
    the next and previous pages". [None] when the label's next link is
    NIL. *)

val prev_name : full_name -> Label.t -> full_name option

type error =
  | Hint_failed of Drive.error
      (** The label check refuted the address hint, or the sector is
          bad. The caller should climb the recovery ladder of §3.6. *)
  | Bad_label of string
      (** The label read back does not parse — scavenger territory. *)

val pp_error : Format.formatter -> error -> unit

val read :
  ?cache:Label_cache.t ->
  ?bio:Bio.t ->
  Drive.t ->
  full_name ->
  (Label.t * Word.t array, error) result
(** One disk operation: check the label against the absolute name, read
    the value. The returned label is complete (length and links), learned
    through the check's wildcards. The value transfer means the label
    check rides free, so [cache] is only {e primed} here, never
    consulted — a hit could not save an operation. With [bio] the value
    {e can} come from memory: a buffered, generation-live track sector
    answers without touching the disk (the check replays against the
    buffered label image, mismatch verdicts included), and a miss fills
    the whole track in one elevator batch before serving. *)

val read_label :
  ?cache:Label_cache.t -> ?bio:Bio.t -> Drive.t -> full_name -> (Label.t, error) result
(** As {!read} but without transferring the value. With [cache], a valid
    cached image answers without any disk operation at all — including
    reproducing a {!Drive.Check_mismatch} verdict when the cached label
    refutes the caller's absolute name; this is where the hint ladder's
    chain walks get cheap. [bio] stands in as a second source of label
    images (a buffered track knows all twelve) but never fills on a
    label-only access — a fill would cost more than the one operation it
    saves. *)

val write :
  ?check:bool ->
  ?cache:Label_cache.t ->
  ?bio:Bio.t ->
  Drive.t ->
  full_name ->
  Word.t array ->
  (Label.t, error) result
(** One disk operation: check the label (unless [check:false] — the
    ablation mode of experiment E3), write the 256-word value. Does not
    change the label, so the page keeps its length; use {!rewrite_label}
    to change L or the links. A checked write primes [cache] (the value
    write leaves the label untouched, so the entry stays live). Raises
    [Invalid_argument] on a wrong-sized value. With [bio], a checked
    write whose sector is buffered and generation-live is {e absorbed}:
    the name check replays against the buffered label image and the
    value is delayed in the buffer until the next coalesced flush — zero
    disk operations now, one amortized elevator write later. A write
    that cannot be absorbed goes through as before (an unchecked write
    also sheds any buffered copy — it bypassed the name discipline the
    buffer relies on). *)

val rewrite_label :
  ?cache:Label_cache.t ->
  ?bio:Bio.t ->
  Drive.t ->
  full_name ->
  new_label:Label.t ->
  value:Word.t array ->
  (unit, error) result
(** Two disk operations, §3.3's third label-write occasion: first check
    the old label (and read the current value into [value]'s zeroed
    buffer if desired), then write the new label and value. Costs about a
    revolution — the price the paper quotes for changing a file's
    length. A valid [cache] entry stands in for the first operation,
    halving that price; the new label is cached after the write. A
    buffered track image ([bio]) also stands in for the check, and the
    written label and value are re-installed clean — superseding any
    delayed value write the buffer held for the sector. *)

val read_raw :
  Drive.t -> Disk_address.t -> (Word.t array * Word.t array, Drive.error) result
(** Header and label, no checking — what the scavenger's sweep uses. *)
