module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address

type report = {
  pages_placed : int;
  moves : int;
  links_rewritten : int;
  sectors_freed : int;
  leaders_updated : int;
  entries_fixed : int;
  files_consecutive : int;
  files_total : int;
  duration_us : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>placed %d pages with %d moves in %a@,\
     links rewritten %d, sectors freed %d, leaders updated %d, entries fixed %d@,\
     %d of %d files fully consecutive@]"
    r.pages_placed r.moves Sim_clock.pp_duration r.duration_us r.links_rewritten
    r.sectors_freed r.leaders_updated r.entries_fixed r.files_consecutive
    r.files_total

(* A page is identified by (fid, pn) throughout. *)
type page_id = File_id.t * int

let read_sector drive index =
  let label = Array.make Sector.label_words Word.zero in
  let value = Array.make Sector.value_words Word.zero in
  match
    Reliable.run drive (Disk_address.of_index index)
      { Drive.op_none with label = Some Drive.Read; value = Some Drive.Read }
      ~label ~value ()
  with
  | Ok () -> Some (label, value)
  | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) -> None

let write_sector drive index ~label ~value =
  match
    Reliable.run drive (Disk_address.of_index index)
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label ~value ()
  with
  | Ok () -> true
  | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) -> false

let compact fs =
  let drive = Fs.drive fs in
  let clock = Drive.clock drive in
  let started = Sim_clock.now_us clock in
  (* The sweep reads raw sectors; delayed writes parked in the track
     buffer cache must reach the platter first or the compactor would
     move stale values. (The moves themselves rewrite labels, whose
     generation bumps retire any buffered image of a moved sector.) *)
  ignore (Bio.flush (Fs.bio fs));
  let sweep = Sweep.run drive in
  let n = Array.length sweep.Sweep.classes in
  let reserved_top = 1 + Fs.descriptor_page_count fs in

  (* Current position of every live page (the descriptor stays put). *)
  let cur : (page_id, int) Hashtbl.t = Hashtbl.create 256 in
  let occupant = Array.make n None in
  let bad = Array.make n false in
  for i = 0 to n - 1 do
    match sweep.Sweep.classes.(i) with
    | Sweep.Live label ->
        if not (File_id.equal label.Label.fid File_id.descriptor) then begin
          let id = (label.Label.fid, label.Label.page) in
          if Hashtbl.mem cur id then
            (* A duplicate absolute name: scavenger territory, not ours. *)
            ()
          else begin
            Hashtbl.replace cur id i;
            occupant.(i) <- Some (id, label)
          end
        end
    | Sweep.Marked_bad | Sweep.Bad_media -> bad.(i) <- true
    | Sweep.Free_sector | Sweep.Garbage _ -> ()
  done;

  (* Assemble files: fid -> highest page number (pages are contiguous on
     a sound volume). *)
  let files : (File_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (fid, pn) _ ->
      let prev = Option.value (Hashtbl.find_opt files fid) ~default:(-1) in
      if pn > prev then Hashtbl.replace files fid pn)
    cur;
  let ordered_files =
    List.sort (fun (a, _) (b, _) -> File_id.compare a b)
      (Hashtbl.fold (fun fid last acc -> (fid, last) :: acc) files [])
  in

  (* Target layout: files back to back just past the descriptor, skipping
     bad sectors. *)
  let target : (page_id, int) Hashtbl.t = Hashtbl.create 256 in
  let incoming = Array.make n None in
  let slot = ref (reserved_top + 1) in
  let place id =
    while !slot < n && (bad.(!slot) || !slot <= reserved_top) do
      incr slot
    done;
    if !slot < n then begin
      Hashtbl.replace target id !slot;
      incoming.(!slot) <- Some id;
      incr slot
    end
  in
  List.iter
    (fun (fid, last) ->
      for pn = 0 to last do
        if Hashtbl.mem cur (fid, pn) then place (fid, pn)
      done)
    ordered_files;

  (* Final label for a page under the target layout. *)
  let final_label (fid, pn) (old : Label.t) =
    let link id =
      match Hashtbl.find_opt target id with
      | Some i -> Disk_address.of_index i
      | None -> Disk_address.nil
    in
    Label.make ~fid ~page:pn ~length:old.Label.length ~next:(link (fid, pn + 1))
      ~prev:(link (fid, pn - 1))
  in

  (* Permute by swapping pages into place, one in-memory buffer deep.

     A parked page must never exist {e only} in that buffer: a crash
     between overwriting its sector and writing it back would lose the
     page outright. One free sector — outside every planned target —
     stages each parked page on the platter first, so at every instant
     every page has a complete on-disk copy (possibly two; the scavenger
     disambiguates identical twins for free). Only a completely full
     pack has no spare, and then the in-memory window returns. *)
  let staging =
    let s = ref (n - 1) in
    while
      !s > reserved_top
      && not (occupant.(!s) = None && incoming.(!s) = None && not bad.(!s))
    do
      decr s
    done;
    if !s > reserved_top then Some !s else None
  in
  let staging_used = ref false in
  let moves = ref 0 and links_rewritten = ref 0 in
  let move_to id label dst =
    let src = Hashtbl.find cur id in
    match read_sector drive src with
    | None -> false
    | Some (_, value) ->
        if write_sector drive dst ~label:(Label.to_words (final_label id label)) ~value
        then begin
          incr moves;
          incr links_rewritten;
          Hashtbl.replace cur id dst;
          occupant.(src) <- None;
          occupant.(dst) <- Some (id, label);
          true
        end
        else false
  in
  for t = 0 to n - 1 do
    match incoming.(t) with
    | None -> ()
    | Some id ->
        let (fid, pn) = id in
        ignore fid;
        ignore pn;
        let src = Hashtbl.find cur id in
        if src <> t then begin
          (* Park any current occupant of [t] in the slot [id] vacates. *)
          let parked =
            match occupant.(t) with
            | None -> None
            | Some (qid, qlabel) -> (
                match read_sector drive t with
                | None -> None
                | Some (_, qvalue) -> Some (qid, qlabel, qvalue))
          in
          let label =
            match occupant.(src) with
            | Some (_, l) -> l
            | None -> assert false
          in
          (match (parked, staging) with
          | Some (qid, qlabel, qvalue), Some s ->
              if
                write_sector drive s
                  ~label:(Label.to_words (final_label qid qlabel))
                  ~value:qvalue
              then staging_used := true
          | _, _ -> ());
          if move_to id label t then
            match parked with
            | None -> ()
            | Some (qid, qlabel, qvalue) ->
                if
                  write_sector drive src
                    ~label:(Label.to_words (final_label qid qlabel))
                    ~value:qvalue
                then begin
                  incr moves;
                  incr links_rewritten;
                  Hashtbl.replace cur qid src;
                  occupant.(src) <- Some (qid, qlabel)
                end
        end
  done;
  (* Retire the staging sector's last stale copy. *)
  (match staging with
  | Some s when !staging_used ->
      ignore
        (write_sector drive s ~label:(Label.free_words ())
           ~value:(Label.free_value ()))
  | Some _ | None -> ());

  (* Straggler links: unmoved pages whose stored links no longer match
     the final layout. One elevator batch re-reads every candidate; a
     second rewrites just the mismatches, carrying along the value each
     read brought back (the write-continuation rule means a label write
     must rewrite the value too). An unreadable sector has nothing worth
     rewriting and is skipped, as before. *)
  let stragglers =
    Array.of_list
      (Hashtbl.fold
         (fun id src acc ->
           match occupant.(src) with
           | None -> acc
           | Some (_, old_label) -> (src, final_label id old_label) :: acc)
         cur [])
  in
  let straggler_labels =
    Array.init (Array.length stragglers) (fun _ ->
        Array.make Sector.label_words Word.zero)
  in
  let straggler_values =
    Array.init (Array.length stragglers) (fun _ ->
        Array.make Sector.value_words Word.zero)
  in
  let straggler_reads =
    Sched.run_batch drive
      (Array.mapi
         (fun j (src, _) ->
           Sched.request ~label:straggler_labels.(j) ~value:straggler_values.(j)
             (Disk_address.of_index src)
             { Drive.op_none with
               Drive.label = Some Drive.Read;
               value = Some Drive.Read
             })
         stragglers)
  in
  let rewrites = ref [] in
  Array.iteri
    (fun j outcome ->
      let src, wanted = stragglers.(j) in
      match outcome.Sched.result with
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          ()
      | Ok () ->
          let matches =
            match Label.of_words straggler_labels.(j) with
            | Ok l -> Label.equal l wanted
            | Error _ -> false
          in
          if not matches then
            rewrites := (src, wanted, straggler_values.(j)) :: !rewrites)
    straggler_reads;
  Array.iter
    (fun outcome ->
      match outcome.Sched.result with
      | Ok () -> incr links_rewritten
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          ())
    (Sched.run_batch drive
       (Array.map
          (fun (src, wanted, value) ->
            Sched.request ~label:(Label.to_words wanted) ~value
              (Disk_address.of_index src)
              { Drive.op_none with
                Drive.label = Some Drive.Write;
                value = Some Drive.Write
              })
          (Array.of_list !rewrites)));

  (* Free everything that is neither reserved, bad, nor a final page. *)
  let sectors_freed = ref 0 in
  let final_occupied = Array.make n false in
  final_occupied.(0) <- true;
  for i = 0 to reserved_top do
    final_occupied.(i) <- true
  done;
  Hashtbl.iter (fun _ i -> final_occupied.(i) <- true) cur;
  let to_free = ref [] in
  for i = n - 1 downto 0 do
    if not (final_occupied.(i) || bad.(i)) then begin
      let already_free =
        match sweep.Sweep.classes.(i) with
        | Sweep.Free_sector -> occupant.(i) = None && incoming.(i) = None
        | Sweep.Live _ | Sweep.Marked_bad | Sweep.Bad_media | Sweep.Garbage _ -> false
      in
      if not already_free then to_free := i :: !to_free
    end
  done;
  (* One batch of frees; writes never mutate their buffers, so every
     request shares the two free patterns. *)
  let free_label = Label.free_words () and free_value = Label.free_value () in
  Array.iter
    (fun outcome ->
      match outcome.Sched.result with
      | Ok () -> incr sectors_freed
      | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
          ())
    (Sched.run_batch drive
       (Array.map
          (fun i ->
            Sched.request ~label:free_label ~value:free_value
              (Disk_address.of_index i)
              { Drive.op_none with
                Drive.label = Some Drive.Write;
                value = Some Drive.Write
              })
          (Array.of_list !to_free)));

  (* Rebuild the allocation map in the handle. *)
  for i = 0 to n - 1 do
    let addr = Disk_address.of_index i in
    if final_occupied.(i) || bad.(i) then Fs.mark_busy fs addr else Fs.mark_free fs addr
  done;

  (* Refresh leaders: last-page hint and the maybe-consecutive flag. *)
  let leaders_updated = ref 0 and files_consecutive = ref 0 in
  List.iter
    (fun (fid, last) ->
      match Hashtbl.find_opt cur (fid, 0) with
      | None -> ()
      | Some leader_index -> (
          let consecutive =
            let rec check pn =
              if pn > last then true
              else
                match (Hashtbl.find_opt cur (fid, pn - 1), Hashtbl.find_opt cur (fid, pn)) with
                | Some a, Some b when b = a + 1 -> check (pn + 1)
                | _ -> false
            in
            check 1
          in
          if consecutive then incr files_consecutive;
          let fn = Page.full_name fid ~page:0 ~addr:(Disk_address.of_index leader_index) in
          match Page.read ~cache:(Fs.label_cache fs) drive fn with
          | Error _ -> ()
          | Ok (_, value) -> (
              match Leader.of_value value with
              | Error _ -> ()
              | Ok leader ->
                  let last_addr =
                    match Hashtbl.find_opt cur (fid, last) with
                    | Some i -> Disk_address.of_index i
                    | None -> Disk_address.nil
                  in
                  let leader =
                    Leader.with_consecutive
                      (Leader.with_last leader ~last_page:last ~last_addr)
                      consecutive
                  in
                  (match
                     Page.write ~cache:(Fs.label_cache fs) drive fn
                       (Leader.to_value leader)
                   with
                  | Ok _ -> incr leaders_updated
                  | Error _ -> ()))))
    ordered_files;

  (* Re-aim directory entries at the new leader addresses. *)
  let entries_fixed = ref 0 in
  List.iter
    (fun (fid, _) ->
      if File_id.is_directory fid then
        match Hashtbl.find_opt cur (fid, 0) with
        | None -> ()
        | Some leader_index -> (
            let fn = Page.full_name fid ~page:0 ~addr:(Disk_address.of_index leader_index) in
            match File.open_leader fs fn with
            | Error _ -> ()
            | Ok dir_file -> (
                let entries, damaged = Directory.salvage dir_file in
                let changed = ref damaged in
                let fixed =
                  List.map
                    (fun (e : Directory.entry) ->
                      let efid = e.Directory.entry_file.Page.abs.Page.fid in
                      match Hashtbl.find_opt cur (efid, 0) with
                      | Some i
                        when not
                               (Disk_address.equal e.Directory.entry_file.Page.addr
                                  (Disk_address.of_index i)) ->
                          incr entries_fixed;
                          changed := true;
                          {
                            e with
                            Directory.entry_file =
                              Page.full_name efid ~page:0 ~addr:(Disk_address.of_index i);
                          }
                      | Some _ | None -> e)
                    entries
                in
                if !changed then
                  match Directory.rewrite dir_file fixed with Ok () | Error _ -> ())))
    ordered_files;

  (* The root directory's leader may itself have moved. *)
  (match Fs.root_dir fs with
  | None -> ()
  | Some fn -> (
      match Hashtbl.find_opt cur (fn.Page.abs.Page.fid, 0) with
      | Some i ->
          Fs.set_root_dir fs
            (Page.full_name fn.Page.abs.Page.fid ~page:0 ~addr:(Disk_address.of_index i))
      | None -> ()));

  match Fs.flush fs with
  | Error e -> Error (Format.asprintf "cannot flush the descriptor: %a" Fs.pp_error e)
  | Ok () ->
      Ok
        {
          pages_placed = Hashtbl.length target;
          moves = !moves;
          links_rewritten = !links_rewritten;
          sectors_freed = !sectors_freed;
          leaders_updated = !leaders_updated;
          entries_fixed = !entries_fixed;
          files_consecutive = !files_consecutive;
          files_total = List.length ordered_files;
          duration_us = Sim_clock.now_us clock - started;
        }

let consecutive_fraction _fs file =
  let ( let* ) = Result.bind in
  let last = File.last_page file in
  if last < 1 then Ok 1.0
  else begin
    let* names =
      let rec collect acc pn =
        if pn > last then Ok (List.rev acc)
        else
          let* fn = File.page_name file pn in
          collect (fn :: acc) (pn + 1)
      in
      collect [] 0
    in
    let rec count adjacent total = function
      | a :: (b :: _ as rest) ->
          let adj =
            Disk_address.to_index b.Page.addr = Disk_address.to_index a.Page.addr + 1
          in
          count (if adj then adjacent + 1 else adjacent) (total + 1) rest
      | [ _ ] | [] -> (adjacent, total)
    in
    let adjacent, total = count 0 0 names in
    if total = 0 then Ok 1.0 else Ok (float_of_int adjacent /. float_of_int total)
  end
