(** A mounted volume: the disk descriptor and the page allocator (§3.3).

    The disk descriptor lives in a file at a standard disk address and
    holds the allocation map (a {e hint} — "the absolute information
    about which pages are free is contained in the labels"), the disk
    shape (absolute), and the name of the root directory (a hint).

    Allocation follows the paper's protocol exactly. The map proposes a
    page; the first write checks the free pattern in its label and only
    then writes the real label — so "a page improperly marked free in the
    map results in a little extra one-time disk activity", and a page
    improperly marked busy is merely lost until the scavenger finds it.
    Freeing checks the page's full name, then writes ones through label
    and value. Both allocation and freeing therefore cost about one disk
    revolution; ordinary data writes check the label for free.

    [label_checking] can be turned off to measure what those checks cost
    and what they buy (experiment E3/E9 ablations). *)

module Word = Alto_machine.Word
module Drive = Alto_disk.Drive
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address

type allocation_policy =
  | Near_previous
      (** Scan onward from the last allocation — the default, which lays
          files out close to consecutively on a quiet disk. *)
  | Rotation_aware
      (** Near-previous track order with rotational position sensing:
          every free sector in a small window of upcoming tracks is
          charged its arrival cost — seek plus rotational wait to its
          slot ({!Drive.catch_slot}) — and the cheapest wins, so an
          allocation stream never waits most of a revolution for the
          linearly-next sector; a hostile-angle hole is left for a
          later pass that arrives at a different phase.
          Trades consecutive sector numbering (and so the leader's
          consecutive-layout hint) for lower first-write latency on
          fragmented tracks. *)
  | Scattered of Random.State.t
      (** Allocate uniformly at random — used by the experiments to
          manufacture fragmentation. *)

type error =
  | Disk_full
  | Page_error of Page.error
  | Corrupt of string
      (** The on-disk descriptor is unusable; the cure is the scavenger. *)

val pp_error : Format.formatter -> error -> unit

type t

val boot_address : Disk_address.t
(** DA 0: reserved for the first page of the boot file (§4). *)

val descriptor_leader_address : Disk_address.t
(** DA 1: the standard address of the disk descriptor file. *)

val format : ?disk_name:string -> Drive.t -> t
(** Make a virgin file system: every sector freed (ones through label and
    value), a fresh descriptor file at the standard address, an empty
    root directory, and the map flushed. Factory formatting writes the
    pack out-of-band, so it costs no simulated time. *)

val mount : Drive.t -> (t, string) result
(** Read the descriptor from the standard address. Any damage — to the
    descriptor's pages, its magic, or a shape that contradicts the
    drive — yields [Error]; the caller's recovery is {!Scavenger}. *)

val drive : t -> Drive.t

val label_cache : t -> Label_cache.t
(** The volume's verified-label cache: one per handle, primed and
    consulted by every {!Page} access made on the volume's behalf.
    {!quarantine} evicts eagerly; everything else relies on the drive's
    generation counters. *)

val bio : t -> Bio.t
(** The volume's track buffer cache: one per handle, consulted and
    primed by {!Page} reads and writes made on the volume's behalf.
    {!flush} writes its delayed values back before the descriptor;
    {!quarantine} evicts eagerly. Readers that must see true pack state
    (audit digests, raw transfers) flush it first. *)

val geometry : t -> Geometry.t
val clock : t -> Alto_machine.Sim_clock.t
val now_seconds : t -> int

val root_dir : t -> Page.full_name option
(** Page 0 of the root directory file. *)

val set_root_dir : t -> Page.full_name -> unit

val fresh_fid : ?directory:bool -> t -> File_id.t
(** The next unused file id (serial counter; flushed with the map). *)

val policy : t -> allocation_policy
val set_policy : t -> allocation_policy -> unit
val label_checking : t -> bool
val set_label_checking : t -> bool -> unit

(** {2 Allocation} *)

val allocate_page :
  t -> label:(Disk_address.t -> Label.t) -> value:Word.t array -> (Disk_address.t, error) result
(** Pick a free page, then perform the first write: check the free
    pattern, write [label addr] and [value]. Stale map entries and bad
    sectors are retried transparently (the map is corrected as a side
    effect). *)

val reserve : t -> (Disk_address.t, error) result
(** The map half of allocation only: pick a page and mark it busy. Used
    when several pages' labels must cross-link before any is written;
    each must still be written with {!write_first}. *)

val unreserve : t -> Disk_address.t -> unit

val write_first :
  t -> Disk_address.t -> Label.t -> Word.t array -> (unit, [ `Not_free | `Bad ]) result
(** The disk half: check-free then write label and value (two disk
    operations — the revolution the paper charges to allocation). *)

val free_page : t -> Page.full_name -> (unit, error) result
(** Check the page's name, write ones through label and value, clear the
    map bit. *)

val free_count : t -> int
val is_free_in_map : t -> Disk_address.t -> bool
val mark_busy : t -> Disk_address.t -> unit
(** Map-only marking; the scavenger and compactor use these while they
    rebuild the map from labels. *)

val mark_free : t -> Disk_address.t -> unit
(** Map-only freeing. A quarantined sector is left busy: the bad-sector
    table overrides the map so the allocator can never hand it out. *)

(** {2 The bad-sector table}

    Sectors whose retry ladder ran dry ({!Alto_disk.Reliable}) are
    quarantined: permanently marked busy in the map and recorded in a
    table that travels with the descriptor, so the verdict survives
    remounts. The table holds at most 64 entries; overflow is counted
    ([fs.quarantine_overflow]) and the extra sectors stay busy only for
    the current mount. *)

val quarantine : t -> Disk_address.t -> unit
(** Mark the sector busy forever and append it to the persistent
    bad-sector table (idempotent; flushed with the descriptor). When the
    table is full the sector spills instead: still busy, still refusing
    {!mark_free}, counted as [fs.quarantine_overflow] — and surviving
    remount only once {!Bad_sectors} writes the spill file. *)

val quarantined : t -> Disk_address.t -> bool
(** Membership in the descriptor table proper (spilled sectors answer
    [false] here; ask {!spilled}). *)

val bad_sector_table : t -> Disk_address.t list
(** The quarantined sectors, oldest first. *)

val spilled : t -> Disk_address.t -> bool

val spilled_table : t -> Disk_address.t list
(** Quarantine verdicts that overflowed the descriptor table, oldest
    first — what {!Bad_sectors} persists. *)

val adopt_spilled : t -> Disk_address.t -> unit
(** Re-enter one spill-file entry read back at mount: busy forever,
    label cache evicted, no overflow counted. *)

val flush : t -> (unit, error) result
(** Write map, serial counter, shape and root name back into the
    descriptor file. *)

(** {2 Unsafe-shutdown state}

    One descriptor word records whether the volume has mutated since its
    last consistency point. It is set (and written through) by the first
    {!reserve}, {!free_page} or {!quarantine} after the point, and
    cleared by a clean unmount ({!mark_clean}), an OutLoad, a format or
    a scavenge. A pack that {!mount}s with {!dirty} true crashed, and
    boot answers with {!Patrol.recover} — a bounded pass from the
    persisted patrol cursor — instead of a whole-pack scavenge. *)

val dirty : t -> bool

val mark_clean : t -> (unit, error) result
(** Declare a consistency point: clear the flag and flush. *)

val patrol_cursor : t -> int
(** The sector index where the verify sweep resumes; persisted with the
    descriptor so recovery is bounded by the sweep's unfinished tail. *)

val set_patrol_cursor : t -> int -> unit
(** In-core only; {!flush} (or the patrol's own persistence policy)
    writes it out. Raises [Invalid_argument] beyond the pack. *)

type counters = {
  allocations : int;
  frees : int;
  stale_map_hits : int;
      (** Allocation attempts refuted by the label's free check — the
          map hint being caught lying. *)
  bad_sectors_hit : int;
}

val counters : t -> counters
val reset_counters : t -> unit

(** {2 Reconstruction interface}

    Used by the scavenger to build a volume handle from swept labels
    rather than from a (possibly destroyed) descriptor. *)

val create_unmounted : Drive.t -> t
(** A handle with an all-busy map, no root, and the serial counter at
    the first user serial; the scavenger then corrects all three and
    calls {!rebuild_descriptor}. *)

val set_next_serial : t -> int -> unit
val next_serial : t -> int

val rebuild_descriptor : t -> (unit, error) result
(** Re-create the descriptor file's pages at the standard addresses
    (assumed free or already the descriptor's own) and flush. *)

val descriptor_page_count : t -> int
(** Number of data pages the descriptor file occupies on this geometry;
    together with the leader they sit at addresses 1..1+count. *)
