module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Drive = Alto_disk.Drive
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

type rung = Direct | Leader_chain | Directory_fid | Directory_name | Scavenge

let rung_key = function
  | Direct -> "direct"
  | Leader_chain -> "leader_chain"
  | Directory_fid -> "directory_fid"
  | Directory_name -> "directory_name"
  | Scavenge -> "scavenge"

(* One hit and one miss counter per rung of the recovery ladder
   ("fs.hints.direct.hits", …): the ratio of the top rung's hits to
   everything below it is the measure of hint freshness. *)
let rung_hits, rung_misses =
  let table make =
    List.map
      (fun r -> (r, make (Printf.sprintf "fs.hints.%s" (rung_key r))))
      [ Direct; Leader_chain; Directory_fid; Directory_name; Scavenge ]
  in
  ( table (fun base -> Obs.counter (base ^ ".hits")),
    table (fun base -> Obs.counter (base ^ ".misses")) )

let count_attempt rung ~succeeded =
  Obs.incr (List.assoc rung (if succeeded then rung_hits else rung_misses))

let m_resolutions = Obs.counter "fs.hints.resolutions"
let m_failures = Obs.counter "fs.hints.failures"
let h_resolution_us = Obs.histogram "fs.hints.resolution_us"

let pp_rung fmt rung =
  Format.pp_print_string fmt
    (match rung with
    | Direct -> "direct hint"
    | Leader_chain -> "links from leader"
    | Directory_fid -> "directory lookup by FV"
    | Directory_name -> "directory lookup by name"
    | Scavenge -> "scavenge and retry")

type attempt = { rung : rung; elapsed_us : int; succeeded : bool }

type request = {
  req_name : string;
  req_fid : File_id.t option;
  req_page : int;
  req_page_hint : Disk_address.t option;
  req_leader_hint : Disk_address.t option;
}

type success = {
  fs : Fs.t;
  value : Word.t array;
  label : Label.t;
  resolved : Page.full_name;
  attempts : attempt list;
}

type failure = { reason : string; failed_attempts : attempt list }

(* Read the wanted page through an open file handle. *)
let read_via_file fs file page =
  match File.page_name file page with
  | Error _ -> None
  | Ok fn -> (
      match Page.read ~cache:(Fs.label_cache fs) (Fs.drive fs) fn with
      | Ok (label, value) -> Some (label, value, fn)
      | Error (Page.Hint_failed _ | Page.Bad_label _) -> None)

let read_page fs ~directory req =
  let attempts = ref [] in
  let clock = Fs.clock fs in
  let t_start = Sim_clock.now_us clock in
  let timed rung f =
    let t0 = Sim_clock.now_us clock in
    let result = f () in
    let succeeded = result <> None in
    attempts :=
      { rung; elapsed_us = Sim_clock.now_us clock - t0; succeeded } :: !attempts;
    count_attempt rung ~succeeded;
    result
  in
  let finish fs (label, value, fn) =
    Obs.incr m_resolutions;
    Obs.observe h_resolution_us (Sim_clock.now_us clock - t_start);
    Ok { fs; value; label; resolved = fn; attempts = List.rev !attempts }
  in

  (* Rung 1: the page hint, checked by one disk operation. *)
  let direct () =
    match (req.req_fid, req.req_page_hint) with
    | Some fid, Some addr -> (
        let fn = Page.full_name fid ~page:req.req_page ~addr in
        match Page.read ~cache:(Fs.label_cache fs) (Fs.drive fs) fn with
        | Ok (label, value) -> Some (label, value, fn)
        | Error (Page.Hint_failed _ | Page.Bad_label _) -> None)
    | _, (Some _ | None) -> None
  in

  (* Rung 2: chase links from the leader hint. *)
  let leader_chain () =
    match (req.req_fid, req.req_leader_hint) with
    | Some fid, Some addr -> (
        match File.open_leader fs (Page.full_name fid ~page:0 ~addr) with
        | Ok file -> read_via_file fs file req.req_page
        | Error _ -> None)
    | _, (Some _ | None) -> None
  in

  (* Rung 3: find the FV in a directory. *)
  let by_fid fs directory () =
    match req.req_fid with
    | None -> None
    | Some fid -> (
        match Directory.entries directory with
        | Error _ -> None
        | Ok entries -> (
            match
              List.find_opt
                (fun (e : Directory.entry) ->
                  File_id.equal e.Directory.entry_file.Page.abs.Page.fid fid)
                entries
            with
            | None -> None
            | Some e -> (
                match File.open_leader fs e.Directory.entry_file with
                | Ok file -> read_via_file fs file req.req_page
                | Error _ -> None)))
  in

  (* Rung 4: look the string name up — possibly a recreated file with a
     new FV. *)
  let by_name fs directory () =
    match Directory.lookup directory req.req_name with
    | Error _ | Ok None -> None
    | Ok (Some e) -> (
        match File.open_leader fs e.Directory.entry_file with
        | Ok file -> read_via_file fs file req.req_page
        | Error _ -> None)
  in

  match timed Direct direct with
  | Some hit -> finish fs hit
  | None -> (
      match timed Leader_chain leader_chain with
      | Some hit -> finish fs hit
      | None -> (
          match timed Directory_fid (by_fid fs directory) with
          | Some hit -> finish fs hit
          | None -> (
              match timed Directory_name (by_name fs directory) with
              | Some hit -> finish fs hit
              | None -> (
                  (* Rung 5: scavenge, then retry the directory rungs on
                     the rebuilt volume. The scavenger reads the raw
                     pack, so the volume must be settled first — any
                     delayed track-buffer writes pushed to the platter. *)
                  ignore (Bio.flush (Fs.bio fs) : Bio.flush_report);
                  let t0 = Sim_clock.now_us clock in
                  match Scavenger.scavenge (Fs.drive fs) with
                  | Error reason ->
                      attempts :=
                        {
                          rung = Scavenge;
                          elapsed_us = Sim_clock.now_us clock - t0;
                          succeeded = false;
                        }
                        :: !attempts;
                      count_attempt Scavenge ~succeeded:false;
                      Obs.incr m_failures;
                      Error { reason; failed_attempts = List.rev !attempts }
                  | Ok (fs', _report) -> (
                      let directory' =
                        let reopen () =
                          match Directory.open_root fs' with
                          | Error _ -> None
                          | Ok root ->
                              if
                                File_id.equal (File.fid root) (File.fid directory)
                              then Some root
                              else
                                let dir_name = (File.leader directory).Leader.name in
                                (match Directory.lookup root dir_name with
                                | Ok (Some e) -> (
                                    match File.open_leader fs' e.Directory.entry_file with
                                    | Ok d -> Some d
                                    | Error _ -> Some root)
                                | Ok None | Error _ -> Some root)
                        in
                        reopen ()
                      in
                      let retry =
                        match directory' with
                        | None -> None
                        | Some dir -> (
                            match by_fid fs' dir () with
                            | Some hit -> Some hit
                            | None -> by_name fs' dir ())
                      in
                      attempts :=
                        {
                          rung = Scavenge;
                          elapsed_us = Sim_clock.now_us clock - t0;
                          succeeded = retry <> None;
                        }
                        :: !attempts;
                      count_attempt Scavenge ~succeeded:(retry <> None);
                      match retry with
                      | Some hit -> finish fs' hit
                      | None ->
                          Obs.incr m_failures;
                          Error
                            {
                              reason =
                                Printf.sprintf
                                  "file %S page %d not found even after scavenging"
                                  req.req_name req.req_page;
                              failed_attempts = List.rev !attempts;
                            })))))
