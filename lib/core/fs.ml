module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Geometry = Alto_disk.Geometry
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

let m_allocations = Obs.counter "fs.page_allocations"
let m_frees = Obs.counter "fs.page_frees"
let m_stale_map_hits = Obs.counter "fs.stale_map_hits"
let m_bad_sectors_hit = Obs.counter "fs.bad_sectors_hit"
let m_descriptor_flushes = Obs.counter "fs.descriptor_flushes"
let m_quarantined = Obs.counter "fs.sectors_quarantined"
let m_quarantine_overflow = Obs.counter "fs.quarantine_overflow"

type allocation_policy =
  | Near_previous
  | Rotation_aware
  | Scattered of Random.State.t

type error = Disk_full | Page_error of Page.error | Corrupt of string

let pp_error fmt = function
  | Disk_full -> Format.pp_print_string fmt "disk full"
  | Page_error e -> Page.pp_error fmt e
  | Corrupt msg -> Format.fprintf fmt "descriptor corrupt: %s" msg

type counters = {
  allocations : int;
  frees : int;
  stale_map_hits : int;
  bad_sectors_hit : int;
}

let zero_counters =
  { allocations = 0; frees = 0; stale_map_hits = 0; bad_sectors_hit = 0 }

type t = {
  drive : Drive.t;
  shape : Geometry.t;
  busy : bool array;  (** The allocation map, in core. true = busy. *)
  mutable next_serial : int;
  mutable root : Page.full_name option;
  mutable last_allocated : int;
  mutable policy : allocation_policy;
  mutable label_checking : bool;
  mutable descriptor_pages : Disk_address.t array;  (** Data pages, pn 1.. *)
  mutable counters : counters;
  mutable bad_table : int list;
      (** Quarantined sector indexes, oldest first — the persistent
          bad-sector table, flushed with the descriptor. *)
  mutable spill : int list;
      (** Quarantined sectors beyond the descriptor table's 64 entries,
          oldest first. They stay busy and refuse {!mark_free} exactly
          like table members, but persistence is {!Bad_sectors}' job —
          the descriptor has no room for them. *)
  mutable dirty : bool;
      (** Set (and persisted) on the first structural mutation since the
          last consistency point; cleared by a clean unmount, an OutLoad,
          or a completed recovery. A pack that mounts dirty crashed. *)
  mutable patrol_cursor : int;
      (** Where the verify sweep will resume, persisted with the
          descriptor so a crash recovers from the sweep's frontier
          instead of rescanning the whole pack. *)
  cache : Label_cache.t;  (** Verified labels, shared by every layer above. *)
  bio : Bio.t;  (** The track buffer cache, shared by every layer above. *)
}

let boot_address = Disk_address.of_index 0
let descriptor_leader_address = Disk_address.of_index 1

(* Descriptor content layout (word offsets within the file's data):
     0      magic            10      (end of shape)
     1      format version   11-13   root directory file id
     2-10   disk shape       14     root directory leader address
     15-16  next serial (hi/lo)
     17     allocation-map word count W
     18     bad-sector table entry count B (0 on packs written before
            the table existed — the word was reserved-as-zero)
     19..   allocation map, 16 sectors per word, MSB first
     19+W.. bad-sector table: B quarantined disk addresses, in room
            reserved for [max_bad_sectors] of them
     19+W+64    state flags (bit 0: dirty — mutated since the last
            consistency point). Packs written before the word existed
            read it as zero padding, i.e. clean.
     19+W+65    patrol cursor: the sector index where the verify sweep
            resumes. Zero on old packs, which is also the sweep's start. *)
let desc_magic = 0xA170
let desc_version = 1
let map_offset = 19

let max_bad_sectors = 64

let drive t = t.drive
let label_cache t = t.cache
let bio t = t.bio
let geometry t = t.shape
let clock t = Drive.clock t.drive
let now_seconds t = int_of_float (Sim_clock.now_seconds (clock t))
let root_dir t = t.root
let set_root_dir t fn = t.root <- Some fn

let fresh_fid ?directory t =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  File_id.make ?directory ~serial ~version:1 ()

let policy t = t.policy
let set_policy t p = t.policy <- p
let label_checking t = t.label_checking
let set_label_checking t flag = t.label_checking <- flag
let counters t = t.counters
let reset_counters t = t.counters <- zero_counters
let next_serial t = t.next_serial
let set_next_serial t n = t.next_serial <- n

let sector_count t = Array.length t.busy

let free_count t =
  Array.fold_left (fun n busy -> if busy then n else n + 1) 0 t.busy

let is_free_in_map t addr = not t.busy.(Disk_address.to_index addr)
let mark_busy t addr = t.busy.(Disk_address.to_index addr) <- true

let quarantined t addr = List.mem (Disk_address.to_index addr) t.bad_table

let mark_free t addr =
  (* A quarantined sector never rejoins the free pool — whether its
     verdict sits in the descriptor table or spilled beyond it. *)
  let i = Disk_address.to_index addr in
  if not (List.mem i t.bad_table) && not (List.mem i t.spill) then
    t.busy.(i) <- false

(* The dirty flag must reach the disk before the mutation it announces,
   and persisting it needs [flush], defined below — hence the knot. *)
let flush_ref : (t -> (unit, error) result) ref = ref (fun _ -> Ok ())

let note_mutation t =
  if not t.dirty then begin
    t.dirty <- true;
    (* Best effort, and only once a descriptor exists to write into:
       the scavenger mutates through an unplaced handle, and a failed
       flush here leaves the flag set in core for the next one. *)
    if Array.length t.descriptor_pages > 0 then
      match !flush_ref t with Ok () | Error _ -> ()
  end

let dirty t = t.dirty
let patrol_cursor t = t.patrol_cursor

let set_patrol_cursor t i =
  if i < 0 || i >= Array.length t.busy then
    invalid_arg "Fs.set_patrol_cursor: sector index beyond the pack";
  t.patrol_cursor <- i

let quarantine t addr =
  let i = Disk_address.to_index addr in
  note_mutation t;
  t.busy.(i) <- true;
  (* Eager, though generation checking would catch it lazily: a
     quarantined sector's label must never be served from core — and
     neither may a buffered track image of it, dirty or not (flushing a
     delayed write to a sector just declared bad would be absurd). *)
  Label_cache.invalidate t.cache addr;
  Bio.invalidate t.bio addr;
  if not (List.mem i t.bad_table) then begin
    if List.length t.bad_table >= max_bad_sectors then begin
      (* The descriptor table is full: spill. The sector refuses the
         free pool exactly like a table member; persistence across
         remounts is {!Bad_sectors}' job (a catalogued file), since the
         descriptor has no room left. *)
      if not (List.mem i t.spill) then begin
        t.spill <- t.spill @ [ i ];
        Obs.incr m_quarantine_overflow
      end
    end
    else begin
      t.bad_table <- t.bad_table @ [ i ];
      Obs.incr m_quarantined;
      Obs.event ~clock:(Drive.clock t.drive)
        ~fields:[ ("addr", Obs.I i) ]
        "fs.sector_quarantined"
    end
  end

let bad_sector_table t = List.map Disk_address.of_index t.bad_table
let spilled t addr = List.mem (Disk_address.to_index addr) t.spill
let spilled_table t = List.map Disk_address.of_index t.spill

let adopt_spilled t addr =
  (* A spill-file entry read back at mount: the verdict predates this
     handle, so it enters the spill list without re-counting. *)
  let i = Disk_address.to_index addr in
  t.busy.(i) <- true;
  Label_cache.invalidate t.cache addr;
  Bio.invalidate t.bio addr;
  if not (List.mem i t.bad_table) && not (List.mem i t.spill) then
    t.spill <- t.spill @ [ i ]

(* {2 Allocation} *)

let pick_candidate t =
  let n = sector_count t in
  let linear_from start =
    let rec scan k i =
      if k >= n then Error Disk_full
      else if not t.busy.(i) then Ok i
      else scan (k + 1) ((i + 1) mod n)
    in
    scan 0 start
  in
  match t.policy with
  | Near_previous -> linear_from ((t.last_allocated + 1) mod n)
  | Rotation_aware ->
      (* Near-previous with rotational position sensing: charge every
         free sector in a small window of upcoming tracks its true
         arrival cost — the seek plus the rotational wait to its slot
         ([Drive.catch_slot] knows where the surface will be when the
         heads settle) — and take the cheapest. The lookahead is the
         point: within one track, picking holes in slot order instead
         of address order merely permutes the same waits (the slot
         angles of the track's holes are what they are), but a window
         of a few tracks almost always contains a hole the head can
         catch within a slot or two, and a hostile-angle hole is simply
         left for a later pass that arrives at a different phase. Track
         order is still near-previous, so locality (and the read side's
         track buffers) keep their clustering. *)
      let spt = t.shape.Geometry.sectors_per_track in
      let sector_us = Geometry.sector_time_us t.shape in
      let tracks = n / spt in
      let start_track = (t.last_allocated + 1) mod n / spt in
      let best_in_window = ref None in
      let lookahead = min 4 tracks in
      for k = 0 to lookahead - 1 do
        let track = (start_track + k) mod tracks in
        let base = track * spt in
        let cylinder, _, _ =
          Disk_address.chs t.shape (Disk_address.of_index base)
        in
        let seek_us =
          Geometry.seek_time_us t.shape
            ~from_cylinder:(Drive.current_cylinder t.drive)
            ~to_cylinder:cylinder
        in
        let catch = Drive.catch_slot t.drive ~cylinder in
        for rel = 0 to spt - 1 do
          if not t.busy.(base + rel) then begin
            let cost = seek_us + (((rel - catch + spt) mod spt) * sector_us) in
            match !best_in_window with
            | Some (_, best_cost) when best_cost <= cost -> ()
            | Some _ | None -> best_in_window := Some (base + rel, cost)
          end
        done
      done;
      (match !best_in_window with
      | Some (i, _) -> Ok i
      | None ->
          (* The window is solid: march onward to the first track with
             any hole and take its soonest-catchable sector. *)
          let rec scan_track k track =
            if k >= tracks then Error Disk_full
            else begin
              let base = track * spt in
              let cylinder, _, _ =
                Disk_address.chs t.shape (Disk_address.of_index base)
              in
              let catch = Drive.catch_slot t.drive ~cylinder in
              let best = ref None in
              for rel = 0 to spt - 1 do
                if not t.busy.(base + rel) then begin
                  let wait = (rel - catch + spt) mod spt in
                  match !best with
                  | Some (_, best_wait) when best_wait <= wait -> ()
                  | Some _ | None -> best := Some (base + rel, wait)
                end
              done;
              match !best with
              | Some (i, _) -> Ok i
              | None -> scan_track (k + 1) ((track + 1) mod tracks)
            end
          in
          scan_track 0 ((start_track + lookahead) mod tracks))
  | Scattered rng ->
      let rec probe k =
        if k = 0 then linear_from (Random.State.int rng n)
        else
          let i = Random.State.int rng n in
          if not t.busy.(i) then Ok i else probe (k - 1)
      in
      probe 32

let reserve t =
  match pick_candidate t with
  | Error e -> Error e
  | Ok i ->
      note_mutation t;
      t.busy.(i) <- true;
      t.last_allocated <- i;
      Ok (Disk_address.of_index i)

let unreserve t addr = mark_free t addr

let write_first t addr label value =
  let write_op () =
    Reliable.run t.drive addr
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label:(Label.to_words label) ~value ()
  in
  if t.label_checking then
    match
      Reliable.run t.drive addr
        { Drive.op_none with label = Some Drive.Check }
        ~label:(Label.check_free ()) ()
    with
    | Error (Drive.Check_mismatch _) -> Error `Not_free
    | Error (Drive.Bad_sector | Drive.Transient _) ->
        (* A transient here means the retry ladder already ran dry. *)
        Error `Bad
    | Ok () -> (
        match write_op () with
        | Ok () -> Ok ()
        | Error Drive.Bad_sector -> Error `Bad
        | Error (Drive.Check_mismatch _ | Drive.Transient _) ->
            assert false (* write-only ops: no checks, no soft reads *))
  else
    match write_op () with
    | Ok () -> Ok ()
    | Error Drive.Bad_sector -> Error `Bad
    | Error (Drive.Check_mismatch _ | Drive.Transient _) -> assert false

let allocate_page t ~label ~value =
  Prof.span (Drive.clock t.drive) "fs.allocate_page" @@ fun () ->
  let rec attempt () =
    match reserve t with
    | Error e -> Error e
    | Ok addr -> (
        match write_first t addr (label addr) value with
        | Ok () ->
            t.counters <- { t.counters with allocations = t.counters.allocations + 1 };
            Obs.incr m_allocations;
            Ok addr
        | Error `Not_free ->
            (* The map lied: the page was busy all along. It stays marked
               busy and we go around again — the paper's "little extra
               one-time disk activity". *)
            t.counters <- { t.counters with stale_map_hits = t.counters.stale_map_hits + 1 };
            Obs.incr m_stale_map_hits;
            Obs.event ~clock:(Drive.clock t.drive)
              ~fields:[ ("addr", Obs.I (Disk_address.to_index addr)) ]
              "fs.stale_map_hit";
            attempt ()
        | Error `Bad ->
            t.counters <-
              { t.counters with bad_sectors_hit = t.counters.bad_sectors_hit + 1 };
            Obs.incr m_bad_sectors_hit;
            (* Record the dud so no future mount hands it out again. *)
            quarantine t addr;
            attempt ())
  in
  attempt ()

let free_page t (fn : Page.full_name) =
  Prof.span (Drive.clock t.drive) "fs.free_page" @@ fun () ->
  note_mutation t;
  let write_free () =
    Reliable.run t.drive fn.Page.addr
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label:(Label.free_words ()) ~value:(Label.free_value ()) ()
  in
  let finish () =
    match write_free () with
    | Error e -> Error (Page_error (Page.Hint_failed e))
    | Ok () ->
        mark_free t fn.Page.addr;
        t.counters <- { t.counters with frees = t.counters.frees + 1 };
        Obs.incr m_frees;
        Ok ()
  in
  if t.label_checking then
    match
      Reliable.run t.drive fn.Page.addr
        { Drive.op_none with label = Some Drive.Check }
        ~label:(Label.check_name fn.Page.abs.Page.fid ~page:fn.Page.abs.Page.page)
        ()
    with
    | Error e -> Error (Page_error (Page.Hint_failed e))
    | Ok () -> finish ()
  else finish ()

(* {2 Descriptor encoding} *)

let map_word_count t = (sector_count t + 15) / 16

(* Two tail words past the bad table: state flags and the patrol
   cursor. They come last so every earlier offset is what older packs
   used; a descriptor without them parses with both defaulted to 0. *)
let descriptor_content_words t = map_offset + map_word_count t + max_bad_sectors + 2

let descriptor_data_pages t =
  (descriptor_content_words t + Sector.value_words - 1) / Sector.value_words

let assemble_descriptor t =
  let total = descriptor_content_words t in
  let words = Array.make total Word.zero in
  words.(0) <- Word.of_int desc_magic;
  words.(1) <- Word.of_int desc_version;
  Array.blit (Geometry.to_words t.shape) 0 words 2 Geometry.encoded_words;
  (match t.root with
  | None -> ()
  | Some fn ->
      let w0, w1, v = File_id.to_words fn.Page.abs.Page.fid in
      words.(11) <- w0;
      words.(12) <- w1;
      words.(13) <- v;
      words.(14) <- Disk_address.to_word fn.Page.addr);
  words.(15) <- Word.of_int (t.next_serial lsr 16);
  words.(16) <- Word.of_int t.next_serial;
  let map_words = map_word_count t in
  words.(17) <- Word.of_int_exn map_words;
  words.(18) <- Word.of_int_exn (List.length t.bad_table);
  for j = 0 to map_words - 1 do
    let w = ref 0 in
    for k = 0 to 15 do
      let i = (j * 16) + k in
      if i < sector_count t && t.busy.(i) then w := !w lor (1 lsl (15 - k))
    done;
    words.(map_offset + j) <- Word.of_int !w
  done;
  List.iteri
    (fun j i ->
      words.(map_offset + map_words + j) <-
        Disk_address.to_word (Disk_address.of_index i))
    t.bad_table;
  let tail = map_offset + map_words + max_bad_sectors in
  words.(tail) <- Word.of_int (if t.dirty then 1 else 0);
  words.(tail + 1) <- Word.of_int_exn t.patrol_cursor;
  words

let parse_descriptor t words =
  let ( let* ) = Result.bind in
  if Array.length words < map_offset then Error "descriptor too short"
  else if Word.to_int words.(0) <> desc_magic then Error "bad descriptor magic"
  else if Word.to_int words.(1) <> desc_version then Error "unknown descriptor version"
  else
    let* shape = Geometry.of_words (Array.sub words 2 Geometry.encoded_words) in
    if not (Geometry.equal shape (Drive.geometry t.drive)) then
      Error "descriptor shape contradicts the drive"
    else begin
      (match File_id.of_words words.(11) words.(12) words.(13) with
      | Ok fid ->
          t.root <-
            Some (Page.full_name fid ~page:0 ~addr:(Disk_address.of_word words.(14)))
      | Error _ -> t.root <- None);
      t.next_serial <- (Word.to_int words.(15) lsl 16) lor Word.to_int words.(16);
      let map_words = Word.to_int words.(17) in
      if Array.length words < map_offset + map_words then
        Error "descriptor map truncated"
      else begin
        for j = 0 to map_words - 1 do
          let w = Word.to_int words.(map_offset + j) in
          for k = 0 to 15 do
            let i = (j * 16) + k in
            if i < sector_count t then t.busy.(i) <- w land (1 lsl (15 - k)) <> 0
          done
        done;
        (* The bad-sector table. Clamp the count against what's actually
           present so packs written before the table existed (word 18
           reserved-as-zero, no entries appended) parse cleanly. *)
        let declared = Word.to_int words.(18) in
        let available = max 0 (Array.length words - (map_offset + map_words)) in
        let count = min declared (min available max_bad_sectors) in
        t.bad_table <- [];
        for j = count - 1 downto 0 do
          let addr = Disk_address.of_word words.(map_offset + map_words + j) in
          let i = Disk_address.to_index addr in
          if i < sector_count t then begin
            t.busy.(i) <- true;
            t.bad_table <- i :: t.bad_table
          end
        done;
        (* The tail words. Packs written before they existed end at the
           bad table; the concatenated pages pad with zeros, which read
           back exactly as the defaults: clean, sweep from sector 0. *)
        let tail = map_offset + map_words + max_bad_sectors in
        if Array.length words > tail + 1 then begin
          t.dirty <- Word.to_int words.(tail) land 1 <> 0;
          let cursor = Word.to_int words.(tail + 1) in
          t.patrol_cursor <- (if cursor < sector_count t then cursor else 0)
        end
        else begin
          t.dirty <- false;
          t.patrol_cursor <- 0
        end;
        Ok ()
      end
    end

(* {2 Writing the descriptor file} *)

let descriptor_page_name t pn =
  if pn = 0 then
    Page.full_name File_id.descriptor ~page:0 ~addr:descriptor_leader_address
  else Page.full_name File_id.descriptor ~page:pn ~addr:t.descriptor_pages.(pn - 1)

let flush t =
  Prof.span (Drive.clock t.drive) "fs.flush" @@ fun () ->
  (* Delayed page writes first: a flush is the volume saying "the
     platter now agrees with everything acknowledged", and that claim
     must cover the buffer cache before the descriptor asserts it. *)
  ignore (Bio.flush t.bio);
  Obs.incr m_descriptor_flushes;
  let words = assemble_descriptor t in
  let pages = descriptor_data_pages t in
  let rec write pn =
    if pn > pages then Ok ()
    else
      let value = Array.make Sector.value_words Word.zero in
      let offset = (pn - 1) * Sector.value_words in
      let len = min Sector.value_words (Array.length words - offset) in
      Array.blit words offset value 0 len;
      let fn = descriptor_page_name t pn in
      match Page.write ~cache:t.cache t.drive fn value with
      | Error e -> Error (Page_error e)
      | Ok _ ->
          (* The descriptor writes through (its durability is the whole
             point); any buffered track image of the sector is stale. *)
          Bio.invalidate t.bio fn.Page.addr;
          write (pn + 1)
  in
  write 1

let () = flush_ref := flush

let mark_clean t =
  (* A consistency point: clear the flag and write the whole descriptor
     (map, serial, cursor) so the next boot trusts the pack as-is. *)
  t.dirty <- false;
  flush t

(* Lay down fresh labels and leader for the descriptor file at the
   standard addresses. Used at format and by the scavenger's rebuild. *)
let place_descriptor_file t =
  let pages = descriptor_data_pages t in
  let content = descriptor_content_words t in
  let addr pn = Disk_address.of_index (1 + pn) in
  t.descriptor_pages <- Array.init pages (fun i -> addr (i + 1));
  mark_busy t boot_address;
  for pn = 0 to pages do
    mark_busy t (addr pn)
  done;
  let label pn =
    let length =
      if pn = 0 then Sector.bytes_per_page
      else if pn < pages then Sector.bytes_per_page
      else (2 * content) - (Sector.bytes_per_page * (pages - 1))
    in
    let next = if pn = pages then Disk_address.nil else addr (pn + 1) in
    let prev = if pn = 0 then Disk_address.nil else addr (pn - 1) in
    Label.make ~fid:File_id.descriptor ~page:pn ~length ~next ~prev
  in
  for pn = 0 to pages do
    Alto_disk.Drive.poke t.drive (addr pn) Sector.Label (Label.to_words (label pn))
  done;
  let leader =
    Leader.make ~created_s:(now_seconds t) ~name:"DiskDescriptor."
      ~last_page:pages ~last_addr:(addr pages) ~maybe_consecutive:true ()
  in
  match
    Page.write ~cache:t.cache t.drive (descriptor_page_name t 0)
      (Leader.to_value leader)
  with
  | Error e -> Error (Page_error e)
  | Ok _ -> flush t

let make_handle drive =
  let cache = Label_cache.create drive in
  let bio = Bio.create ~label_cache:cache drive in
  let t =
    {
      drive;
      cache;
      bio;
      shape = Drive.geometry drive;
      busy = Array.make (Drive.sector_count drive) false;
      next_serial = File_id.first_user_serial;
      root = None;
      last_allocated = 0;
      policy = Near_previous;
      label_checking = true;
      descriptor_pages = [||];
      counters = zero_counters;
      bad_table = [];
      spill = [];
      dirty = false;
      patrol_cursor = 0;
    }
  in
  (* A dirty track buffer is an acknowledged write the platter hasn't
     seen; the descriptor's dirty flag must announce it before the delay
     begins, so a crash boots into the bounded recovery scan. *)
  Bio.set_on_dirty bio (fun () -> note_mutation t);
  t

let create_unmounted drive =
  let t = make_handle drive in
  Array.fill t.busy 0 (Array.length t.busy) true;
  t

let rebuild_descriptor t =
  (* A rebuilt pack is a consistency point by construction, whatever
     quarantines the run recorded through this handle along the way. *)
  t.dirty <- false;
  match place_descriptor_file t with Ok () -> Ok () | Error e -> Error e

let descriptor_page_count = descriptor_data_pages

(* Create the root directory: a leader page and one empty data page,
   written through the ordinary allocation path. *)
let create_root_directory t =
  let ( let* ) = Result.bind in
  let* leader_addr = reserve t in
  let* page1_addr = reserve t in
  let leader_label =
    Label.make ~fid:File_id.root_directory ~page:0 ~length:Sector.bytes_per_page
      ~next:page1_addr ~prev:Disk_address.nil
  in
  let page1_label =
    Label.make ~fid:File_id.root_directory ~page:1 ~length:0 ~next:Disk_address.nil
      ~prev:leader_addr
  in
  let leader =
    Leader.make ~created_s:(now_seconds t) ~name:"SysDir." ~last_page:1
      ~last_addr:page1_addr ~maybe_consecutive:true ()
  in
  let fail = Error (Corrupt "fresh page refused first write") in
  let* () =
    match write_first t leader_addr leader_label (Leader.to_value leader) with
    | Ok () -> Ok ()
    | Error (`Not_free | `Bad) -> fail
  in
  let* () =
    match
      write_first t page1_addr page1_label (Array.make Sector.value_words Word.zero)
    with
    | Ok () -> Ok ()
    | Error (`Not_free | `Bad) -> fail
  in
  t.root <- Some (Page.full_name File_id.root_directory ~page:0 ~addr:leader_addr);
  Ok ()

let format ?disk_name:_ drive =
  let t = make_handle drive in
  (* Factory formatting: free every sector out-of-band. *)
  let free_label = Label.free_words () and free_value = Label.free_value () in
  for i = 0 to Drive.sector_count drive - 1 do
    let addr = Disk_address.of_index i in
    Alto_disk.Drive.poke drive addr Sector.Label free_label;
    Alto_disk.Drive.poke drive addr Sector.Value free_value
  done;
  mark_busy t boot_address;
  (match place_descriptor_file t with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Fs.format: %a" pp_error e));
  (match create_root_directory t with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Fs.format: %a" pp_error e));
  (* Formatting's own allocations set the flag; a virgin pack is clean. *)
  t.dirty <- false;
  (match flush t with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Fs.format: %a" pp_error e));
  t

let mount drive =
  let ( let* ) = Result.bind in
  let t = make_handle drive in
  let* leader_label, leader_value =
    Result.map_error
      (fun e -> Format.asprintf "descriptor leader unreadable: %a" Page.pp_error e)
      (Page.read ~cache:t.cache drive (descriptor_page_name t 0))
  in
  let* leader = Leader.of_value leader_value in
  let pages = leader.Leader.last_page in
  let rec chase acc fn label pn =
    if pn > pages then Ok (List.rev acc)
    else
      match Page.next_name fn label with
      | None -> Error "descriptor file ends early"
      | Some next_fn -> (
          match Page.read ~cache:t.cache drive next_fn with
          | Error e ->
              Error (Format.asprintf "descriptor page %d unreadable: %a" pn Page.pp_error e)
          | Ok (next_label, value) ->
              chase ((next_fn, value) :: acc) next_fn next_label (pn + 1))
  in
  let* data = chase [] (descriptor_page_name t 0) leader_label 1 in
  let words = Array.concat (List.map snd data) in
  let* () = parse_descriptor t words in
  t.descriptor_pages <- Array.of_list (List.map (fun (fn, _) -> fn.Page.addr) data);
  Ok t
