module Word = Alto_machine.Word
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Sched = Alto_disk.Sched
module Disk_address = Alto_disk.Disk_address
module Obs = Alto_obs.Obs

let m_digests = Obs.counter "fs.audit.digests"
let m_sectors = Obs.counter "fs.audit.sectors_digested"
let m_applied = Obs.counter "fs.audit.pages_applied"
let m_apply_failures = Obs.counter "fs.audit.apply_failures"

(* Sectors 0..reserved_top live at fixed addresses (boot page,
   descriptor file): they are digested and repaired like the rest but
   never relocated — their address is their identity. *)
let reserved_top fs = 1 + Fs.descriptor_page_count fs

type slice = {
  start : int;
  indexes : int array;
  labels : Word.t array array;
  values : Word.t array array;
  outcomes : Sched.outcome array;
}

let read_slice fs ~start ~k =
  let drive = Fs.drive fs in
  (* Audit reads must see true pack state: a digest over sectors whose
     newest values sit delayed in the track buffer cache would disagree
     with a replica that has flushed, and a patrol verdict would judge
     stale bits. Flush first, then read the platter. *)
  ignore (Bio.flush (Fs.bio fs));
  let n = Drive.sector_count drive in
  let indexes = Array.init k (fun j -> (start + j) mod n) in
  let labels = Array.init k (fun _ -> Array.make Sector.label_words Word.zero) in
  let values = Array.init k (fun _ -> Array.make Sector.value_words Word.zero) in
  let requests =
    Array.init k (fun j ->
        Sched.request ~label:labels.(j) ~value:values.(j)
          (Disk_address.of_index indexes.(j))
          { Drive.op_none with
            Drive.label = Some Drive.Read;
            value = Some Drive.Read
          })
  in
  let outcomes = Sched.run_batch drive requests in
  { start; indexes; labels; values; outcomes }

let sector_ok slice j = Result.is_ok slice.outcomes.(j).Sched.result

(* FNV-1a over the sector index, then the label and value words, so the
   digest pins both content and position. A sector whose batch read
   hard-failed (the retry ladder dry) folds a sentinel instead: two
   replicas only agree on a slice if they agree on which sectors are
   legible AND what the legible ones say. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L
let hard_fail_sentinel = 0xDEADL

let fold_word h w = Int64.mul (Int64.logxor h (Int64.of_int w)) fnv_prime

let digest_of_slice slice =
  let h = ref fnv_basis in
  Array.iteri
    (fun j i ->
      h := fold_word !h i;
      if sector_ok slice j then begin
        Array.iter (fun w -> h := fold_word !h (Word.to_int w)) slice.labels.(j);
        Array.iter (fun w -> h := fold_word !h (Word.to_int w)) slice.values.(j)
      end
      else h := fold_word !h (Int64.to_int hard_fail_sentinel))
    slice.indexes;
  !h

let digest fs ~start ~k =
  let slice = read_slice fs ~start ~k in
  Obs.incr m_digests;
  Obs.add m_sectors k;
  digest_of_slice slice

type apply_result =
  | Applied
  | Apply_failed of Drive.error
  | Verify_mismatch

(* Install a peer's page image over a local sector: write label and
   value together (blind — the local label is by assumption wrong or
   garbage), read back and compare, then shed every cached belief about
   the sector so nothing can resurrect the old contents. The in-core
   allocation map is re-pointed from the new label; the on-disk map
   arrives with the descriptor sectors themselves when they are repaired
   in turn, so a repair never writes through [Fs.flush]. *)
let apply_page fs ~index ~label ~value =
  let drive = Fs.drive fs in
  let cache = Fs.label_cache fs in
  let addr = Disk_address.of_index index in
  let write () =
    Reliable.run drive addr
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label ~value ()
  in
  let verify () =
    let rl = Array.make Sector.label_words Word.zero in
    let rv = Array.make Sector.value_words Word.zero in
    match
      Reliable.run drive addr
        { Drive.op_none with label = Some Drive.Read; value = Some Drive.Read }
        ~label:rl ~value:rv ()
    with
    | Error e -> Apply_failed e
    | Ok () -> if rl = label && rv = value then Applied else Verify_mismatch
  in
  let outcome = match write () with Error e -> Apply_failed e | Ok () -> verify () in
  (match outcome with
  | Applied ->
      Drive.bump_label_generation drive addr;
      Label_cache.invalidate cache addr;
      Bio.invalidate (Fs.bio fs) addr;
      (* Map hints follow the label's verdict. Quarantine verdicts are
         NOT taken here — the bad-sector table is descriptor content and
         arrives with the descriptor's own repair; marking busy merely
         protects the sector from allocation until then. *)
      (match Label.classify label with
      | Label.Valid _ | Label.Bad | Label.Garbage _ ->
          if Fs.is_free_in_map fs addr then Fs.mark_busy fs addr
      | Label.Free ->
          if
            (not (Fs.is_free_in_map fs addr))
            && (not (Fs.quarantined fs addr))
            && not (Fs.spilled fs addr)
          then Fs.mark_free fs addr);
      Obs.incr m_applied
  | Apply_failed _ | Verify_mismatch -> Obs.incr m_apply_failures);
  outcome

let pp_apply_result fmt = function
  | Applied -> Format.pp_print_string fmt "applied"
  | Apply_failed e -> Format.fprintf fmt "apply failed: %a" Drive.pp_error e
  | Verify_mismatch -> Format.pp_print_string fmt "read-back mismatch"
