(** The Scavenger (§3.5): "a scavenging procedure is provided to
    reconstruct the state of the file system from whatever fragmented
    state it may have fallen into."

    The scavenger trusts only the absolutes — the labels and the leader
    pages — and recomputes every hint from them: the page links, the
    allocation map, the directory address hints and the root directory
    itself. It needs no readable descriptor and no working volume handle;
    given nothing but a drive it returns a freshly mounted file system
    plus an account of everything it found and fixed.

    What it does, in order:
    + sweep every label on the disk ({!Sweep});
    + reassemble files by absolute name, discarding duplicate pages,
      headless page sets, and pages beyond a gap in the chain;
    + evacuate any foreign page squatting on the descriptor's standard
      addresses;
    + repair every incorrect next/previous link;
    + reclaim garbage-labelled sectors and quarantine bad ones;
    + verify every directory entry "points to page 0 of an existing
      file, fixing up the address if necessary and detecting entries
      which point elsewhere";
    + adopt every orphaned file into the root directory under its leader
      name — "this is the sole function of the leader name";
    + rebuild the disk descriptor.

    All disk work goes through ordinary timed operations, so the
    simulated duration of a scavenge is measured honestly (experiment
    E1: "it takes about a minute for a 2.5 megabyte disk"). The working
    table keeps a few words per live sector — within the paper's "48
    bits per sector" memory budget, so even the larger disk's table
    would have fit the machine that inspired it. *)

module Drive = Alto_disk.Drive

type report = {
  sectors_scanned : int;
  files_found : int;  (** Files alive when the dust settled. *)
  nameless_files : int;
      (** Files whose leader page no longer yields a legible leader
          name — they survive, but under a synthesized name if adopted. *)
  directories_found : int;
  orphans_adopted : int;
  links_repaired : int;
  labels_reclaimed : int;  (** Garbage labels rewritten as free. *)
  bad_sectors : int;  (** Unreadable or marked bad; quarantined. *)
  entries_fixed : int;  (** Directory address hints corrected. *)
  entries_removed : int;  (** Dangling directory entries dropped. *)
  incomplete_files : int;  (** Files truncated or discarded over gaps. *)
  pages_lost : int;  (** Live-looking pages freed as unreachable. *)
  duplicate_pages : int;  (** Two sectors claiming one absolute name. *)
  relocated_pages : int;
  marginal_relocated : int;
      (** Pages copied off marginal sectors — sectors whose data came
          back only after several retries during value verification. The
          old sector is quarantined; the data lives on elsewhere. *)
  pages_marked_bad : int;
      (** Live-looking pages whose data surface would not read back
          during value verification; their labels now carry the
          bad-page marker. *)
  duplicates_rescued : int;
      (** Pages whose chosen copy would not read back but whose twin —
          left by a crash between a move's copy and its retire — did.
          The twin takes over; the torn copy is quarantined. *)
  leaders_rebuilt : int;
      (** Headless files given a fresh, synthesized leader page: a torn
          leader write costs the file its dates and leader name, never
          its data. *)
  root_rebuilt : bool;  (** No root directory survived; a new one was made. *)
  duration_us : int;
}

val pp_report : Format.formatter -> report -> unit

val scavenge :
  ?verify_values:bool -> ?suspect_retries:int -> Drive.t -> (Fs.t * report, string) result
(** The only fatal error is a disk so broken that a fresh descriptor
    cannot be written. [verify_values] (default off — it roughly doubles
    the disk time) additionally reads every live page's data, under
    {!Alto_disk.Reliable.salvage_policy}, and stamps the bad-page marker
    into the label of any sector whose surface has failed, so "they will
    never be used again" (§3.5). A page that reads back only after
    [suspect_retries] or more retries (default 2) sits on a marginal
    sector: its data is copied to a fresh sector, links re-chained, and
    the old sector quarantined. Every sector known bad at the end of the
    run is recorded in the rebuilt volume's persistent bad-sector table
    ({!Fs.bad_sector_table}). Raises [Invalid_argument] if
    [suspect_retries < 1]. *)
