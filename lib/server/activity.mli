(** Cooperative activities: §4's control structure, made explicit.

    The paper's servers are "a set of cooperating activities"
    multiplexing many conversations over one machine; the switching
    structure is cooperative — an activity runs until it must wait, then
    yields the processor. Here an activity is a step function: each call
    does a slice of synchronous work and says what comes next — another
    slice ({!Yield}), a disk wait ({!Await_disk}), or the end
    ({!Finished}). The scheduler round-robins every runnable activity
    through one step, and only when {e all} of them are parked on disk
    waits does it run one {!Alto_disk.Sched.sweep} of the shared
    standing queue — the moment the elevator serves every blocked
    conversation's sectors in a single C-SCAN pass.

    Time is simulated: each step charges [step_us] of processor time to
    the clock, and all disk time is charged by the drive during the
    shared sweeps. The table of activities is bounded ([max_active]);
    {!spawn} refuses above the bound, which is the mechanism the file
    server turns into admission-control NAKs. *)

module Sim_clock = Alto_machine.Sim_clock
module Sched = Alto_disk.Sched
module Trace = Alto_obs.Trace

type step =
  | Yield of (unit -> step)
      (** Give the other activities a turn, then continue here. *)
  | Await_disk of {
      requests : Sched.request array;
      resume : Sched.outcome array -> step;
    }
      (** Submit the batch to the shared standing queue and sleep until
          every outcome is in. [resume] receives outcomes in request
          order. An empty batch resumes on the next round. *)
  | Finished

type t

val create : ?step_us:int -> ?max_active:int -> queue:Sched.t -> Sim_clock.t -> t
(** [step_us] (default 50) is the simulated processor cost charged per
    activity step; [max_active] (default 16) bounds the table. Raises
    [Invalid_argument] on a non-positive bound or negative step cost. *)

val spawn : ?ctx:Trace.context -> t -> name:string -> (unit -> step) -> bool
(** Enter a new activity, [false] when the table is full. [name] labels
    the [server.activity.spawn] trace event. [ctx] is the request trace
    the activity works for (default: {!Trace.current} at spawn); the
    scheduler installs it as the current context around every step —
    saved and restored at each [Yield]/[Await_disk] switch like machine
    registers — and its disk batches park and bill against it. *)

val round : t -> int
(** One scheduling round: each activity runnable at the start of the
    round runs one step; then, if everyone is parked on disk waits, one
    shared elevator sweep completes them. Returns the progress made —
    steps run plus requests the sweep served — so a driver looping
    while the result is positive cannot stall on a sweep-only round.
    0 means nothing was runnable and nothing was parked. *)

val run_until_idle : t -> unit
(** Rounds until no activity is live. *)

val live : t -> int
(** Activities spawned and not yet finished. *)

val blocked : t -> int
(** Live activities currently parked on a disk wait. *)

val idle : t -> bool
(** No live activities. *)

val max_active : t -> int
val disk_queue : t -> Sched.t
