module Sim_clock = Alto_machine.Sim_clock
module Sched = Alto_disk.Sched
module Obs = Alto_obs.Obs
module Trace = Alto_obs.Trace

let m_spawned = Obs.counter "server.activities.spawned"
let m_steps = Obs.counter "server.activities.steps"
let m_sweeps = Obs.counter "server.activities.shared_sweeps"

type step =
  | Yield of (unit -> step)
  | Await_disk of {
      requests : Sched.request array;
      resume : Sched.outcome array -> step;
    }
  | Finished

type activity = {
  act_id : int;
  act_name : string;
  (* The request trace this conversation works for. Saved and restored
     around every step, so switching activities switches the current
     context the way a context switch swaps machine registers. *)
  mutable act_ctx : Trace.context option;
}

type t = {
  clock : Sim_clock.t;
  queue : Sched.t;
  step_us : int;
  max_active : int;
  runnable : (activity * (unit -> step)) Queue.t;
  mutable live : int;
  mutable blocked : int;
  mutable next_id : int;
}

let create ?(step_us = 50) ?(max_active = 16) ~queue clock =
  if max_active < 1 then invalid_arg "Activity.create: max_active must be >= 1";
  if step_us < 0 then invalid_arg "Activity.create: negative step cost";
  {
    clock;
    queue;
    step_us;
    max_active;
    runnable = Queue.create ();
    live = 0;
    blocked = 0;
    next_id = 0;
  }

let live t = t.live
let blocked t = t.blocked
let max_active t = t.max_active
let disk_queue t = t.queue
let idle t = t.live = 0

let spawn ?ctx t ~name body =
  if t.live >= t.max_active then false
  else begin
    let ctx = match ctx with Some _ as c -> c | None -> Trace.current () in
    let act = { act_id = t.next_id; act_name = name; act_ctx = ctx } in
    t.next_id <- t.next_id + 1;
    t.live <- t.live + 1;
    Obs.incr m_spawned;
    Obs.event ~clock:t.clock
      ~fields:[ ("name", Obs.S act.act_name); ("id", Obs.I act.act_id) ]
      "server.activity.spawn";
    Queue.push (act, body) t.runnable;
    true
  end

(* Park an activity on its disk requests: the batch goes to the standing
   queue, and the activity reappears on the run queue when its last
   outcome arrives — during whichever sweep that is. *)
let park t act requests resume =
  let n = Array.length requests in
  if n = 0 then Queue.push (act, fun () -> resume [||]) t.runnable
  else begin
    t.blocked <- t.blocked + 1;
    (match act.act_ctx with Some c -> Trace.parked c | None -> ());
    let outcomes = Array.make n { Sched.result = Ok (); retries = 0 } in
    let remaining = ref n in
    Sched.submit_batch ?ctx:act.act_ctx t.queue requests ~on_done:(fun i outcome ->
        outcomes.(i) <- outcome;
        decr remaining;
        if !remaining = 0 then begin
          t.blocked <- t.blocked - 1;
          Queue.push (act, fun () -> resume outcomes) t.runnable
        end)
  end

let round t =
  (* Every activity runnable at the start of the round gets exactly one
     step; an activity that yields rejoins behind the others (round
     robin), so no conversation can starve the table. *)
  let steps = Queue.length t.runnable in
  for _ = 1 to steps do
    match Queue.take_opt t.runnable with
    | None -> ()
    | Some (act, run) -> (
        Obs.incr m_steps;
        Sim_clock.advance_us t.clock t.step_us;
        let prior = Trace.current () in
        Trace.set_current act.act_ctx;
        let next =
          match run () with
          | next -> next
          | exception exn ->
              Trace.set_current prior;
              raise exn
        in
        (* The body may have moved within (or out of) its trace; the
           activity keeps whatever was current when it switched away. *)
        act.act_ctx <- Trace.current ();
        Trace.set_current prior;
        match next with
        | Yield k -> Queue.push (act, k) t.runnable
        | Await_disk { requests; resume } -> park t act requests resume
        | Finished -> t.live <- t.live - 1)
  done;
  (* Only when every conversation has yielded to a disk wait does the
     elevator move: that is the window in which requests from different
     activities have piled up, and one C-SCAN pass serves them all. *)
  let swept =
    if Queue.is_empty t.runnable && t.blocked > 0 then begin
      Obs.incr m_sweeps;
      Sched.sweep t.queue
    end
    else 0
  in
  steps + swept

let run_until_idle t =
  while not (idle t) do
    if round t = 0 && Queue.is_empty t.runnable && t.blocked = 0 then
      (* live > 0 but nothing runnable and nothing parked: an activity
         was lost, which is a scheduler bug, not a workload state. *)
      invalid_arg "Activity.run_until_idle: live activities are unreachable"
  done
