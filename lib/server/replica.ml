module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Net = Alto_net.Net
module Fs = Alto_fs.Fs
module Audit = Alto_fs.Audit
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
module Trace = Alto_obs.Trace

(* Packet opcodes (word 0). Disjoint from the file-server request/reply
   space (10..12, 20..22) and the file-transfer framing (1..3), so a
   station could in principle speak both protocols. *)
let op_digest_req = 30
let op_digest_resp = 31
let op_pages_req = 32
let op_page = 33
let op_pages_done = 34

(* Process-wide replication metrics — what the CI gate watches. *)
let m_audits = Obs.counter "repl.audits"
let m_votes = Obs.counter "repl.votes"
let m_agreements = Obs.counter "repl.agreements"
let m_divergent = Obs.counter "repl.divergent"
let m_repairs = Obs.counter "repl.repairs"
let m_pages_repaired = Obs.counter "repl.pages_repaired"
let m_bytes_repaired = Obs.counter "repl.bytes_repaired"
let m_pages_served = Obs.counter "repl.pages_served"
let m_repair_failures = Obs.counter "repl.repair_failures"
let m_timeouts = Obs.counter "repl.timeouts"
let m_resends = Obs.counter "repl.resends"
let m_inconclusive = Obs.counter "repl.inconclusive"
let m_send_errors = Obs.counter "repl.send_errors"
let m_rejoins = Obs.counter "repl.rejoins"
let m_remounts = Obs.counter "repl.remounts"
let h_rtt_us = Obs.histogram "repl.rtt_us"
let h_repair_us = Obs.histogram "repl.repair_us"

(* {2 Wire encoding}

   Sequence numbers travel as two words (32 bits); digests as four.
   Sector indexes and slice lengths fit one word on every supported
   geometry. *)

let word16 v = Word.of_int (v land 0xFFFF)

let seq_words seq = [| word16 seq; word16 (seq lsr 16) |]
let seq_of p off = Word.to_int p.(off) lor (Word.to_int p.(off + 1) lsl 16)

let digest_words d =
  Array.init 4 (fun i ->
      word16 (Int64.to_int (Int64.shift_right_logical d (16 * i))))

let digest_of p off =
  let w i = Int64.of_int (Word.to_int p.(off + i)) in
  Int64.logor (w 0)
    (Int64.logor
       (Int64.shift_left (w 1) 16)
       (Int64.logor (Int64.shift_left (w 2) 32) (Int64.shift_left (w 3) 48)))

(* A page image is 7 label + 256 value words — too big for one packet,
   so each repaired sector travels as two: part 0 carries the label and
   the first half of the value, part 1 the second half. *)
let half_value = Sector.value_words / 2

type await_digests = {
  ad_seq : int;
  ad_start : int;
  ad_k : int;
  ad_local : int64;
  mutable ad_votes : (string * int64) list;  (* responders, arrival order *)
  mutable ad_sent_at : int;
  mutable ad_deadline : int;
  mutable ad_attempts : int;
}

type await_pages = {
  ap_seq : int;
  ap_start : int;
  ap_k : int;
  ap_from : string;
  ap_want : int64;
  ap_labels : Word.t array array;
  ap_values : Word.t array array;
  ap_have : bool array array;  (* k x 2: which halves have arrived *)
  mutable ap_mask : int option;  (* which sectors the winner served *)
  mutable ap_sent_at : int;
  mutable ap_deadline : int;
  mutable ap_attempts : int;
}

type phase = Idle | Await_digests of await_digests | Await_pages of await_pages

type node = {
  name : string;
  station : Net.station;
  fleet : fleet;
  mutable fs : Fs.t;
  on_new_fs : Fs.t -> unit;
  mutable cursor : int;
  mutable phase : phase;
  mutable seq : int;
  mutable laps : int;
  mutable slices_audited : int;
  mutable slices_repaired : int;
  mutable pages_in : int;
  mutable pages_out : int;
  mutable pages_lost : int;
  mutable ties : int;
  mutable last_vote : string;
  mutable needs_remount : bool;
  (* The request trace of the audit slice in flight: minted when the
     digests go out, finished when the cursor advances past the slice —
     however many resends, votes and repair rounds that took. *)
  mutable audit_ctx : Trace.context option;
}

and fleet = {
  net : Net.t;
  clock : Sim_clock.t;
  slice : int;
  timeout_us : int;
  max_attempts : int;
  step_us : int;
  mutable nodes : node list;  (* join order *)
}

let default_slice = 24 (* one Diablo 31 cylinder, like the patrol *)

let create ?(slice = default_slice) ?(timeout_us = 500_000)
    ?(max_attempts = 8) ?(step_us = 50) ~clock net =
  if slice < 1 || slice > 32 then
    invalid_arg "Replica.create: slice must be 1..32 (the repair mask is 32 bits)";
  { net; clock; slice; timeout_us; max_attempts; step_us; nodes = [] }

let join fleet ~name ?(on_new_fs = fun _ -> ()) fs =
  let station = Net.attach fleet.net ~name in
  let node =
    {
      name;
      station;
      fleet;
      fs;
      on_new_fs;
      cursor = 0;
      phase = Idle;
      seq = 0;
      laps = 0;
      slices_audited = 0;
      slices_repaired = 0;
      pages_in = 0;
      pages_out = 0;
      pages_lost = 0;
      ties = 0;
      last_vote = "never voted";
      needs_remount = false;
      audit_ctx = None;
    }
  in
  fleet.nodes <- fleet.nodes @ [ node ];
  node

let nodes fleet = fleet.nodes
let name t = t.name
let fs t = t.fs
let cursor t = t.cursor
let laps t = t.laps
let slices_audited t = t.slices_audited
let slices_repaired t = t.slices_repaired
let pages_repaired t = t.pages_in
let pages_served t = t.pages_out
let pages_lost t = t.pages_lost
let last_vote t = t.last_vote
let rebuilding t = t.needs_remount
let peers t = List.filter (fun n -> n.name <> t.name) t.fleet.nodes
let quorum fleet = (List.length fleet.nodes / 2) + 1
let now t = Sim_clock.now_us t.fleet.clock

let send t ~to_ payload =
  match Net.send t.station ~to_ payload with
  | Ok () -> ()
  | Error _ -> Obs.incr m_send_errors

(* {2 The responder side}

   Stateless and idempotent: a duplicated request costs a duplicated
   (identical) answer, a dropped one costs the requester a resend. The
   disk work is real — a digest request reads a whole slice — which is
   exactly the audit's cost model. *)

(* The requester's context arrives in the packet envelope; responder
   work joins the audit's trace as a child span. The dedup key is the
   logical request — kind, sequence number, responder — so the first
   arrival bills the trace, while a duplicated or already-served resent
   copy does its (identical) work untraced: the wire can lie all it
   wants without double-billing anyone. *)
let with_remote t ~wire ~kind ~seq f =
  match Trace.of_wire wire with
  | Some ctx ->
      Trace.remote ctx
        ~key:(Printf.sprintf "%s:%d:%s" kind seq t.name)
        ~name:(Printf.sprintf "%s@%s" kind t.name)
        f
  | None -> f ()

let serve_digest t ~src ~wire p =
  let seq = seq_of p 1 and start = Word.to_int p.(3) and k = Word.to_int p.(4) in
  let n = Drive.sector_count (Fs.drive t.fs) in
  if k >= 1 && k <= 32 && start < n then
    with_remote t ~wire ~kind:"repl.digest" ~seq (fun () ->
        let d =
          Obs.time t.fleet.clock "repl.digest_us" (fun () ->
              Audit.digest t.fs ~start ~k)
        in
        send t ~to_:src
          (Array.concat
             [ [| word16 op_digest_resp |]; seq_words seq;
               [| word16 start; word16 k |]; digest_words d ]))

let serve_pages t ~src ~wire p =
  let seq = seq_of p 1 and start = Word.to_int p.(3) and k = Word.to_int p.(4) in
  let n = Drive.sector_count (Fs.drive t.fs) in
  if k >= 1 && k <= 32 && start < n then
    with_remote t ~wire ~kind:"repl.pages" ~seq (fun () ->
    let slice = Audit.read_slice t.fs ~start ~k in
    let mask = ref 0 in
    for j = 0 to k - 1 do
      if Audit.sector_ok slice j then begin
        mask := !mask lor (1 lsl j);
        let head part =
          Array.concat
            [ [| word16 op_page |]; seq_words seq;
              [| word16 j; word16 part; word16 slice.Audit.indexes.(j) |] ]
        in
        send t ~to_:src
          (Array.concat
             [ head 0; slice.Audit.labels.(j);
               Array.sub slice.Audit.values.(j) 0 half_value ]);
        send t ~to_:src
          (Array.concat
             [ head 1; Array.sub slice.Audit.values.(j) half_value half_value ]);
        t.pages_out <- t.pages_out + 1;
        Obs.incr m_pages_served
      end
    done;
    send t ~to_:src
      (Array.concat
         [ [| word16 op_pages_done |]; seq_words seq;
           [| word16 start; word16 k;
              word16 !mask; word16 (!mask lsr 16) |] ]))

(* {2 The requester side} *)

(* Both request kinds — first sends and timeout resends alike — go out
   under the audit's context, so their envelopes carry it to the
   responders. *)
let send_digest_reqs t ad targets =
  Trace.with_current t.audit_ctx (fun () ->
      let p =
        Array.concat
          [ [| word16 op_digest_req |]; seq_words ad.ad_seq;
            [| word16 ad.ad_start; word16 ad.ad_k |] ]
      in
      List.iter (fun peer -> send t ~to_:peer.name p) targets)

let send_pages_req t ap =
  Trace.with_current t.audit_ctx (fun () ->
      send t ~to_:ap.ap_from
        (Array.concat
           [ [| word16 op_pages_req |]; seq_words ap.ap_seq;
             [| word16 ap.ap_start; word16 ap.ap_k |] ]))

let remount t =
  match Fs.mount (Fs.drive t.fs) with
  | Ok fs ->
      t.fs <- fs;
      t.needs_remount <- false;
      t.on_new_fs fs;
      Obs.incr m_remounts;
      Obs.event ~clock:t.fleet.clock
        ~fields:[ ("node", Obs.S t.name) ]
        "repl.remount"
  | Error _ ->
      (* The pack is still partly foreign mid-rebuild; the flag stays
         up and the next lap boundary tries again. *)
      ()

let advance t k =
  let n = Drive.sector_count (Fs.drive t.fs) in
  (match t.audit_ctx with Some c -> Trace.finish c ~status:"done" | None -> ());
  t.audit_ctx <- None;
  t.cursor <- t.cursor + k;
  t.phase <- Idle;
  if t.cursor >= n then begin
    t.cursor <- 0;
    t.laps <- t.laps + 1;
    (* Descriptor sectors were overwritten wholesale during this lap:
       the in-core volume is a stale belief about the pack. Re-mount
       from the repaired truth at the lap boundary, when no audit
       exchange is in flight against the old image. *)
    if t.needs_remount then remount t
  end

let start_audit t =
  let n = Drive.sector_count (Fs.drive t.fs) in
  let k = min t.fleet.slice (n - t.cursor) in
  t.slices_audited <- t.slices_audited + 1;
  Obs.incr m_audits;
  match peers t with
  | [] ->
      t.last_vote <- "solo (no peers)";
      advance t k
  | ps ->
      let ctx =
        Trace.start ~clock:t.fleet.clock ~origin:t.name
          ~name:(Printf.sprintf "audit %d+%d" t.cursor k)
      in
      t.audit_ctx <- Some ctx;
      let local =
        Trace.with_current (Some ctx) (fun () ->
            Obs.time t.fleet.clock "repl.digest_us" (fun () ->
                Audit.digest t.fs ~start:t.cursor ~k))
      in
      t.seq <- t.seq + 1;
      let ad =
        {
          ad_seq = t.seq;
          ad_start = t.cursor;
          ad_k = k;
          ad_local = local;
          ad_votes = [];
          ad_sent_at = now t;
          ad_deadline = now t + t.fleet.timeout_us;
          ad_attempts = 1;
        }
      in
      send_digest_reqs t ad ps;
      t.phase <- Await_digests ad

(* Majority vote over self + responders. With quorum > half the fleet
   there is at most one winning digest; no quorum is a tie — counted,
   skipped, retried next lap (LOCKSS polls that fail to reach agreement
   are rerun, not forced). *)
let vote t ad =
  Obs.incr m_votes;
  let votes = (t.name, ad.ad_local) :: List.rev ad.ad_votes in
  let total = List.length t.fleet.nodes in
  let q = quorum t.fleet in
  let count d =
    List.length (List.filter (fun (_, d') -> Int64.equal d d') votes)
  in
  let winner =
    List.find_opt (fun (_, d) -> count d >= q) votes
    |> Option.map (fun (_, d) -> d)
  in
  let mark m = match t.audit_ctx with Some c -> Trace.mark c m | None -> () in
  match winner with
  | Some d when Int64.equal d ad.ad_local ->
      Obs.incr m_agreements;
      mark "agree";
      t.last_vote <-
        Printf.sprintf "agree %d/%d on slice %d+%d" (count d) total ad.ad_start
          ad.ad_k;
      advance t ad.ad_k
  | Some d ->
      (* The crowd outvoted us: stream the slice from the first peer
         that answered with the winning digest. *)
      Obs.incr m_divergent;
      mark "divergent";
      let from =
        match List.find_opt (fun (_, d') -> Int64.equal d d') (List.rev ad.ad_votes) with
        | Some (peer, _) -> peer
        | None -> assert false (* the winner had >= 2 votes, so a peer holds it *)
      in
      t.last_vote <-
        Printf.sprintf "divergent on slice %d+%d, repairing from %s" ad.ad_start
          ad.ad_k from;
      t.seq <- t.seq + 1;
      let ap =
        {
          ap_seq = t.seq;
          ap_start = ad.ad_start;
          ap_k = ad.ad_k;
          ap_from = from;
          ap_want = d;
          ap_labels =
            Array.init ad.ad_k (fun _ -> Array.make Sector.label_words Word.zero);
          ap_values =
            Array.init ad.ad_k (fun _ -> Array.make Sector.value_words Word.zero);
          ap_have = Array.init ad.ad_k (fun _ -> Array.make 2 false);
          ap_mask = None;
          ap_sent_at = now t;
          ap_deadline = now t + t.fleet.timeout_us;
          ap_attempts = 1;
        }
      in
      send_pages_req t ap;
      t.phase <- Await_pages ap
  | None ->
      Obs.incr m_inconclusive;
      mark "no-quorum";
      t.ties <- t.ties + 1;
      t.last_vote <-
        Printf.sprintf "no quorum on slice %d+%d (%d voters)" ad.ad_start ad.ad_k
          (List.length votes);
      advance t ad.ad_k

let pages_complete ap =
  match ap.ap_mask with
  | None -> false
  | Some mask ->
      let ok = ref true in
      for j = 0 to ap.ap_k - 1 do
        if mask land (1 lsl j) <> 0 then
          if not (ap.ap_have.(j).(0) && ap.ap_have.(j).(1)) then ok := false
      done;
      !ok

let apply_repair t ap =
  let mask = Option.get ap.ap_mask in
  let t0 = now t in
  let reserved_top = Audit.reserved_top t.fs in
  Trace.with_current t.audit_ctx (fun () ->
  Prof.span t.fleet.clock "repl.apply" (fun () ->
      for j = 0 to ap.ap_k - 1 do
        let index = ap.ap_start + j in
        if mask land (1 lsl j) <> 0 then (
          match
            Audit.apply_page t.fs ~index ~label:ap.ap_labels.(j)
              ~value:ap.ap_values.(j)
          with
          | Audit.Applied ->
              t.pages_in <- t.pages_in + 1;
              Obs.incr m_pages_repaired;
              Obs.add m_bytes_repaired (2 * (Sector.label_words + Sector.value_words));
              if index <= reserved_top then t.needs_remount <- true
          | Audit.Apply_failed _ | Audit.Verify_mismatch ->
              t.pages_lost <- t.pages_lost + 1;
              Obs.incr m_repair_failures)
        else begin
          (* The winner could not read this sector either: nothing to
             install, and saying so beats pretending. *)
          t.pages_lost <- t.pages_lost + 1;
          Obs.incr m_repair_failures
        end
      done));
  (* Settle the argument: the repaired slice must now digest to the
     winning value, or the slice stays divergent for the next lap. *)
  let d =
    Trace.with_current t.audit_ctx (fun () ->
        Audit.digest t.fs ~start:ap.ap_start ~k:ap.ap_k)
  in
  let mark m = match t.audit_ctx with Some c -> Trace.mark c m | None -> () in
  if Int64.equal d ap.ap_want then begin
    t.slices_repaired <- t.slices_repaired + 1;
    Obs.incr m_repairs;
    mark "repaired";
    Obs.observe h_repair_us (now t - t0);
    t.last_vote <-
      Printf.sprintf "repaired slice %d+%d from %s" ap.ap_start ap.ap_k ap.ap_from
  end
  else begin
    Obs.incr m_repair_failures;
    mark "repair-failed";
    t.last_vote <-
      Printf.sprintf "repair of slice %d+%d from %s did not converge" ap.ap_start
        ap.ap_k ap.ap_from
  end;
  Obs.event ~clock:t.fleet.clock
    ~fields:
      [
        ("node", Obs.S t.name);
        ("from", Obs.S ap.ap_from);
        ("start", Obs.I ap.ap_start);
        ("k", Obs.I ap.ap_k);
        ("converged", Obs.I (if Int64.equal d ap.ap_want then 1 else 0));
      ]
    "repl.repair";
  advance t ap.ap_k

(* {2 Incoming packets} *)

let on_digest_resp t ~src p =
  match t.phase with
  | Await_digests ad
    when seq_of p 1 = ad.ad_seq
         && Word.to_int p.(3) = ad.ad_start
         && Word.to_int p.(4) = ad.ad_k
         && not (List.mem_assoc src ad.ad_votes) ->
      ad.ad_votes <- (src, digest_of p 5) :: ad.ad_votes;
      (* One mark per accepted vote: a duplicated response falls to the
         mem_assoc guard above, so the timeline cannot double-count. *)
      (match t.audit_ctx with
      | Some c -> Trace.mark c ("digest:" ^ src)
      | None -> ());
      Obs.observe h_rtt_us (now t - ad.ad_sent_at)
  | _ -> () (* stale, duplicate, or foreign: ignored *)

let on_page t p =
  match t.phase with
  | Await_pages ap when seq_of p 1 = ap.ap_seq ->
      let j = Word.to_int p.(3) and part = Word.to_int p.(4) in
      let index = Word.to_int p.(5) in
      if j < ap.ap_k && part < 2 && index = ap.ap_start + j then begin
        let data = Array.sub p 6 (Array.length p - 6) in
        (if part = 0 then begin
           if Array.length data = Sector.label_words + half_value then begin
             Array.blit data 0 ap.ap_labels.(j) 0 Sector.label_words;
             Array.blit data Sector.label_words ap.ap_values.(j) 0 half_value;
             ap.ap_have.(j).(0) <- true
           end
         end
         else if Array.length data = half_value then begin
           Array.blit data 0 ap.ap_values.(j) half_value half_value;
           ap.ap_have.(j).(1) <- true
         end)
      end
  | _ -> ()

let on_pages_done t p =
  match t.phase with
  | Await_pages ap
    when seq_of p 1 = ap.ap_seq
         && Word.to_int p.(3) = ap.ap_start
         && Word.to_int p.(4) = ap.ap_k ->
      ap.ap_mask <- Some (Word.to_int p.(5) lor (Word.to_int p.(6) lsl 16))
  | _ -> ()

let handle t { Net.src; payload = p; trace = wire } =
  if Array.length p >= 1 then begin
    let op = Word.to_int p.(0) in
    if op = op_digest_req && Array.length p >= 5 then serve_digest t ~src ~wire p
    else if op = op_digest_resp && Array.length p >= 9 then on_digest_resp t ~src p
    else if op = op_pages_req && Array.length p >= 5 then serve_pages t ~src ~wire p
    else if op = op_page && Array.length p >= 6 then on_page t p
    else if op = op_pages_done && Array.length p >= 7 then on_pages_done t p
    (* anything else: not ours, dropped on the floor *)
  end

(* {2 Timeouts and backoff}

   Every exchange is guarded: when the deadline passes, resend (to the
   peers still silent) with the deadline doubled; after [max_attempts]
   rounds, act on what arrived — a short vote, or an abandoned repair
   retried next lap. Resending is safe throughout because the responder
   is stateless and application happens only once, on completion. *)

let backoff t attempts = t.fleet.timeout_us * (1 lsl min attempts 6)

let check_digest_deadline t ad =
  if now t >= ad.ad_deadline then begin
    Obs.incr m_timeouts;
    if ad.ad_attempts >= t.fleet.max_attempts then vote t ad
    else begin
      let silent =
        List.filter (fun p -> not (List.mem_assoc p.name ad.ad_votes)) (peers t)
      in
      ad.ad_attempts <- ad.ad_attempts + 1;
      ad.ad_deadline <- now t + backoff t ad.ad_attempts;
      Obs.add m_resends (List.length silent);
      send_digest_reqs t ad silent
    end
  end

let check_pages_deadline t ap =
  if now t >= ap.ap_deadline then begin
    Obs.incr m_timeouts;
    if ap.ap_attempts >= t.fleet.max_attempts then begin
      (* The winner went quiet; the slice stays divergent and the next
         lap holds a fresh vote (possibly electing a different peer). *)
      Obs.incr m_repair_failures;
      (match t.audit_ctx with
      | Some c -> Trace.mark c "repair-timeout"
      | None -> ());
      t.last_vote <-
        Printf.sprintf "repair of slice %d+%d from %s timed out" ap.ap_start
          ap.ap_k ap.ap_from;
      advance t ap.ap_k
    end
    else begin
      ap.ap_attempts <- ap.ap_attempts + 1;
      ap.ap_deadline <- now t + backoff t ap.ap_attempts;
      Obs.incr m_resends;
      (* Parts already received stay: the retry only has to fill the
         holes the net chewed, so attempts converge geometrically. *)
      send_pages_req t ap
    end
  end

(* {2 Driving a node}

   One tick = one turn of the cooperative audit activity: charge a
   scheduling quantum, drain the station, then move the state machine
   one step. Returns progress units so executives and drain loops can
   tell work from idleness. *)

let tick t =
  Sim_clock.advance_us t.fleet.clock t.fleet.step_us;
  let work = ref 0 in
  let rec drain () =
    match Net.receive t.station with
    | None -> ()
    | Some pkt ->
        incr work;
        handle t pkt;
        drain ()
  in
  drain ();
  (match t.phase with
  | Idle ->
      start_audit t;
      incr work
  | Await_digests ad ->
      if List.length ad.ad_votes = List.length (peers t) then begin
        vote t ad;
        incr work
      end
      else check_digest_deadline t ad
  | Await_pages ap ->
      if pages_complete ap then begin
        apply_repair t ap;
        incr work
      end
      else check_pages_deadline t ap);
  !work

let tick_fleet fleet = List.fold_left (fun acc n -> acc + tick n) 0 fleet.nodes

let run_until fleet ?(max_ticks = 2_000_000) pred =
  let ticks = ref 0 in
  while (not (pred ())) && !ticks < max_ticks do
    ignore (tick_fleet fleet : int);
    incr ticks
  done;
  pred ()

(* {2 Whole-pack loss}

   A node that lost its pack (or its mind) re-joins: reformat the drive
   as a virgin volume and restart the audit from sector 0. Every slice
   then loses its vote 1-vs-rest and is streamed back from the crowd;
   the lap boundary remounts the rebuilt descriptor. *)

let rejoin t =
  let fs = Fs.format (Fs.drive t.fs) in
  t.fs <- fs;
  t.on_new_fs fs;
  t.cursor <- 0;
  (* Whatever audit was in flight died with the pack. *)
  (match t.audit_ctx with Some c -> Trace.finish c ~status:"abandoned" | None -> ());
  t.audit_ctx <- None;
  t.phase <- Idle;
  t.needs_remount <- false;
  Obs.incr m_rejoins;
  Obs.event ~clock:t.fleet.clock ~fields:[ ("node", Obs.S t.name) ] "repl.rejoin"

(* {2 The peers report} *)

let report fleet =
  let lines =
    List.concat_map
      (fun n ->
        let sectors = Drive.sector_count (Fs.drive n.fs) in
        [
          Printf.sprintf "%-8s cursor %d/%d, lap %d, %d slices audited, %d ties%s"
            n.name n.cursor sectors n.laps n.slices_audited n.ties
            (if n.needs_remount then " (rebuilding)" else "");
          Printf.sprintf
            "         repairs: %d slices / %d pages in, %d pages served, %d lost"
            n.slices_repaired n.pages_in n.pages_out n.pages_lost;
          Printf.sprintf "         last vote: %s" n.last_vote;
        ])
      fleet.nodes
  in
  let dropped, duped, delayed = Net.fault_census fleet.net in
  lines
  @ [
      Printf.sprintf "net:     %s; dropped %d, duplicated %d, delayed %d"
        (if Net.faults_on fleet.net then "seeded faults ON" else "clean")
        dropped duped delayed;
    ]
