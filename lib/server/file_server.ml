module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Net = Alto_net.Net
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module Directory = Alto_fs.Directory
module Sched = Alto_disk.Sched
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
module Trace = Alto_obs.Trace

(* Request opcodes (packet word 0). *)
let op_get = 10
let op_put = 11
let op_list = 12

(* Reply opcodes. File contents travel as file transfers, not packets. *)
let op_ack = 20
let op_error = 21
let op_nak = 22

let listing_name = ";listing"

(* Process-wide server metrics — the counters the CI gate watches. *)
let m_reqs = Obs.counter "server.reqs"
let m_client_timeouts = Obs.counter "server.client_timeouts"
let m_traces_abandoned = Obs.counter "server.traces_abandoned"
let m_naks = Obs.counter "server.naks"
let m_errors = Obs.counter "server.errors"
let m_send_errors = Obs.counter "server.send_errors"
let h_req_us = Obs.histogram "server.req_us"
let h_get_us = Obs.histogram "server.get_us"
let h_put_us = Obs.histogram "server.put_us"
let h_list_us = Obs.histogram "server.list_us"

type stats = {
  gets : int;
  puts : int;
  lists : int;
  errors : int;
  naks : int;
  send_errors : int;
}

type t = {
  fs : Fs.t;
  station : Net.station;
  clock : Sim_clock.t;
  acts : Activity.t;
  mutable gets : int;
  mutable puts : int;
  mutable lists : int;
  mutable errors : int;
  mutable naks : int;
  mutable send_errors : int;
}

let create ?(max_active = 16) ?(step_us = 50) fs station =
  let clock = Fs.clock fs in
  {
    fs;
    station;
    clock;
    acts = Activity.create ~step_us ~max_active ~queue:(Sched.create (Fs.drive fs)) clock;
    gets = 0;
    puts = 0;
    lists = 0;
    errors = 0;
    naks = 0;
    send_errors = 0;
  }

let stats t =
  {
    gets = t.gets;
    puts = t.puts;
    lists = t.lists;
    errors = t.errors;
    naks = t.naks;
    send_errors = t.send_errors;
  }

let activities t = t.acts
let max_active t = Activity.max_active t.acts

let packet_string payload ~at =
  if Array.length payload <= at then None
  else
    let len = Word.to_int payload.(at) in
    let nwords = (len + 1) / 2 in
    if Array.length payload < at + 1 + nwords then None
    else Some (Word.string_of_words (Array.sub payload (at + 1) nwords) ~len)

let string_packet op s =
  Array.concat
    [ [| Word.of_int_exn op; Word.of_int_exn (String.length s) |]; Word.words_of_string s ]

(* A reply that cannot be delivered is not silently nothing: the station
   may have detached, the payload may be oversized — either way the
   failure is counted where [stats] and the regression gate can see it. *)
let net_send t ~to_ payload =
  match Net.send t.station ~to_ payload with
  | Ok () -> ()
  | Error _ ->
      t.send_errors <- t.send_errors + 1;
      Obs.incr m_send_errors

let net_send_file t ~to_ ~name contents =
  match Net.send_file t.station ~to_ ~name contents with
  | Ok () -> true
  | Error _ ->
      t.send_errors <- t.send_errors + 1;
      Obs.incr m_send_errors;
      false

let send_error t ~to_ msg =
  t.errors <- t.errors + 1;
  Obs.incr m_errors;
  net_send t ~to_ (string_packet op_error msg)

let send_nak t ~to_ =
  t.naks <- t.naks + 1;
  Obs.incr m_naks;
  net_send t ~to_ [| Word.of_int op_nak |]

(* Every admitted conversation ends exactly once: through [conclude] on
   success (bumping the op's own counter and histogram) or through
   [conclude_failed] after an error reply. *)
let conclude t ~t0 kind =
  let dt = Sim_clock.now_us t.clock - t0 in
  Obs.incr m_reqs;
  Obs.observe h_req_us dt;
  match kind with
  | `Get ->
      t.gets <- t.gets + 1;
      Obs.observe h_get_us dt
  | `Put ->
      t.puts <- t.puts + 1;
      Obs.observe h_put_us dt
  | `List ->
      t.lists <- t.lists + 1;
      Obs.observe h_list_us dt

let conclude_failed t ~t0 =
  Obs.incr m_reqs;
  Obs.observe h_req_us (Sim_clock.now_us t.clock - t0)

(* {2 The three conversations}

   Each request is an activity: slices of synchronous work separated by
   the waits the paper's §4 activities switch at. A GET parks its whole
   request set on the standing elevator queue and sleeps; the scheduler
   serves every sleeping conversation's pages in one shared sweep. *)

let get_body t ~src ~t0 name () =
  Prof.span t.clock "server.get" (fun () ->
      let refuse msg =
        send_error t ~to_:src msg;
        conclude_failed t ~t0;
        Activity.Finished
      in
      match Directory.open_root t.fs with
      | Error e -> refuse (Format.asprintf "server volume sick: %a" Directory.pp_error e)
      | Ok root -> (
          match Directory.lookup root name with
          | Error e -> refuse (Format.asprintf "%a" Directory.pp_error e)
          | Ok None -> refuse (Printf.sprintf "no file %S" name)
          | Ok (Some entry) -> (
              match File.open_leader t.fs entry.Directory.entry_file with
              | Error e -> refuse (Format.asprintf "%s: %a" name File.pp_error e)
              | Ok file -> (
                  let deliver contents =
                    if net_send_file t ~to_:src ~name contents then
                      conclude t ~t0 `Get
                    else conclude_failed t ~t0;
                    Activity.Finished
                  in
                  match File.plan_read file with
                  | Error e -> refuse (Format.asprintf "%s: %a" name File.pp_error e)
                  | Ok None -> deliver ""
                  | Ok (Some plan) ->
                      Activity.Await_disk
                        {
                          requests = File.plan_requests plan;
                          resume =
                            (fun outcomes ->
                              Prof.span t.clock "server.get" (fun () ->
                                  match File.finish_read plan outcomes with
                                  | Ok contents -> deliver contents
                                  | Error e ->
                                      refuse
                                        (Format.asprintf "%s: %a" name File.pp_error e)));
                        }))))

let put_body t ~src ~t0 name contents () =
  Prof.span t.clock "server.put" (fun () ->
      let refuse msg =
        send_error t ~to_:src msg;
        conclude_failed t ~t0;
        Activity.Finished
      in
      match Directory.open_root t.fs with
      | Error e -> refuse (Format.asprintf "server volume sick: %a" Directory.pp_error e)
      | Ok root -> (
          let ( let* ) = Result.bind in
          let stored =
            let* file =
              match Directory.lookup root name with
              | Ok (Some e) ->
                  Result.map_error
                    (fun e -> Format.asprintf "%a" File.pp_error e)
                    (File.open_leader t.fs e.Directory.entry_file)
              | Ok None ->
                  let* file =
                    Result.map_error
                      (fun e -> Format.asprintf "%a" File.pp_error e)
                      (File.create t.fs ~name)
                  in
                  let* () =
                    Result.map_error
                      (fun e -> Format.asprintf "%a" Directory.pp_error e)
                      (Directory.add root ~name (File.leader_name file))
                  in
                  Ok file
              | Error e -> Error (Format.asprintf "%a" Directory.pp_error e)
            in
            let file_err r =
              Result.map_error (fun e -> Format.asprintf "%a" File.pp_error e) r
            in
            let* () = file_err (File.truncate file ~len:0) in
            let* () =
              if String.length contents = 0 then Ok ()
              else file_err (File.write_bytes file ~pos:0 contents)
            in
            file_err (File.flush_leader file)
          in
          match stored with
          | Ok () ->
              net_send t ~to_:src [| Word.of_int op_ack |];
              conclude t ~t0 `Put;
              Activity.Finished
          | Error msg -> refuse msg))

let list_body t ~src ~t0 () =
  Prof.span t.clock "server.list" (fun () ->
      let refuse msg =
        send_error t ~to_:src msg;
        conclude_failed t ~t0;
        Activity.Finished
      in
      match Directory.open_root t.fs with
      | Error e -> refuse (Format.asprintf "server volume sick: %a" Directory.pp_error e)
      | Ok root -> (
          match Directory.entries root with
          | Error e -> refuse (Format.asprintf "%a" Directory.pp_error e)
          | Ok entries ->
              let text =
                String.concat "\n"
                  (List.map
                     (fun (e : Directory.entry) -> e.Directory.entry_name)
                     entries)
              in
              if net_send_file t ~to_:src ~name:listing_name text then
                conclude t ~t0 `List
              else conclude_failed t ~t0;
              Activity.Finished))

(* {2 Admission}

   One request packet becomes one activity — or, when the table is
   full, a NAK: the client is told to come back rather than queued
   without bound. A refused PUT still consumes its file transfer, so a
   rejected conversation cannot poison the queue for the next one. *)

let admit_one t =
  match Net.receive t.station with
  | None -> false
  | Some { Net.src; payload; trace } ->
      let t0 = Sim_clock.now_us t.clock in
      let ctx = Trace.of_wire trace in
      let admitted () = match ctx with Some c -> Trace.mark c "admitted" | None -> () in
      (* The whole admission runs under the request's context: the
         spawned activity inherits it (and carries it through every
         switch), and every reply — ACK, NAK, error, the file transfer
         itself — goes out with the context in its envelope, which is
         how the client finds the trace its reply answers. *)
      Trace.with_current ctx (fun () ->
          if Array.length payload = 0 then send_error t ~to_:src "empty request"
          else
            let op = Word.to_int payload.(0) in
            if op = op_get then
              match packet_string payload ~at:1 with
              | Some name ->
                  if
                    Activity.spawn t.acts ~name:("get " ^ name)
                      (get_body t ~src ~t0 name)
                  then admitted ()
                  else send_nak t ~to_:src
              | None -> send_error t ~to_:src "malformed GET"
            else if op = op_put then
              match packet_string payload ~at:1 with
              | Some name -> (
                  match Net.receive_file t.station with
                  | None -> send_error t ~to_:src "PUT without a following file transfer"
                  | Some (sent_name, contents) ->
                      if not (String.equal sent_name name) then
                        send_error t ~to_:src "PUT name does not match the transferred file"
                      else if
                        Activity.spawn t.acts ~name:("put " ^ name)
                          (put_body t ~src ~t0 name contents)
                      then admitted ()
                      else send_nak t ~to_:src)
              | None -> send_error t ~to_:src "malformed PUT"
            else if op = op_list then begin
              if Activity.spawn t.acts ~name:"list" (list_body t ~src ~t0) then
                admitted ()
              else send_nak t ~to_:src
            end
            else send_error t ~to_:src (Printf.sprintf "unknown request %d" op));
      true

(* {2 Driving the server} *)

let busy t = Net.pending t.station > 0 || not (Activity.idle t.acts)

let tick t =
  let admitted = ref 0 in
  while Net.pending t.station > 0 do
    if admit_one t then incr admitted
  done;
  !admitted + Activity.round t.acts

let step t =
  if not (busy t) then false
  else begin
    ignore (admit_one t : bool);
    Activity.run_until_idle t.acts;
    true
  end

let serve_pending t =
  let served = ref 0 in
  let continue = ref true in
  while !continue do
    let admitted = ref 0 in
    while Net.pending t.station > 0 do
      if admit_one t then incr admitted
    done;
    Activity.run_until_idle t.acts;
    served := !served + !admitted;
    continue := !admitted > 0 || Net.pending t.station > 0
  done;
  !served

module Client = struct
  type error =
    | Remote of string
    | Busy
    | Timeout
    | Protocol of string
    | Net_error of Net.error

  let pp_error fmt = function
    | Remote msg -> Format.fprintf fmt "server says: %s" msg
    | Busy -> Format.pp_print_string fmt "server is full, try again"
    | Timeout -> Format.pp_print_string fmt "timed out waiting for a reply"
    | Protocol msg -> Format.fprintf fmt "protocol trouble: %s" msg
    | Net_error e -> Net.pp_error fmt e

  type reply = File of string * string | Ack

  let net r = Result.map_error (fun e -> Net_error e) r

  (* Each send mints the request's trace (when the wire has a clock to
     mint against) and runs under it, so the request packets carry the
     context to the server in their envelopes. A send the network
     refuses closes the trace on the spot — nobody will ever reply to
     it. *)
  let traced_send station ~op f =
    let ctx =
      match Net.station_clock station with
      | Some clock ->
          Some (Trace.start ~clock ~origin:(Net.station_name station) ~name:op)
      | None -> None
    in
    match Trace.with_current ctx f with
    | Ok () as ok -> ok
    | Error _ as err ->
        (match ctx with Some c -> Trace.finish c ~status:"error" | None -> ());
        err

  let send_get station ~server ~name =
    traced_send station ~op:("get " ^ name) (fun () ->
        net (Net.send station ~to_:server (string_packet op_get name)))

  let send_put station ~server ~name contents =
    traced_send station ~op:("put " ^ name) (fun () ->
        let ( let* ) = Result.bind in
        let* () = net (Net.send station ~to_:server (string_packet op_put name)) in
        net (Net.send_file station ~to_:server ~name contents))

  let send_list station ~server =
    traced_send station ~op:"list" (fun () ->
        net (Net.send station ~to_:server [| Word.of_int op_list |]))

  (* A reply is either a file transfer or a single status packet; [None]
     until one has fully arrived. Status packets and file framing use
     disjoint opcode spaces, so peeking is unambiguous. *)
  (* The reply's envelope context names the trace it answers, so the
     close lands on the right request no matter how late or duplicated
     the reply is — [Trace.finish] on an already-closed trace is a
     no-op, which is exactly the don't-double-count semantics a lying
     wire needs. *)
  let close_trace trace ~status =
    match Trace.of_wire trace with
    | Some c -> Trace.finish c ~status
    | None -> ()

  let poll_reply station =
    match Net.receive_file_traced station with
    | Some (name, contents, trace) ->
        close_trace trace ~status:"replied";
        Some (Ok (File (name, contents)))
    | None -> (
        match Net.receive station with
        | None -> None
        | Some { Net.payload; trace; _ } ->
            Some
              (if Array.length payload = 0 then begin
                 close_trace trace ~status:"error";
                 Error (Protocol "empty reply")
               end
               else
                 let op = Word.to_int payload.(0) in
                 if op = op_ack then begin
                   close_trace trace ~status:"replied";
                   Ok Ack
                 end
                 else if op = op_nak then begin
                   close_trace trace ~status:"nak";
                   Error Busy
                 end
                 else if op = op_error then begin
                   close_trace trace ~status:"error";
                   match packet_string payload ~at:1 with
                   | Some msg -> Error (Remote msg)
                   | None -> Error (Protocol "malformed error packet")
                 end
                 else begin
                   close_trace trace ~status:"error";
                   Error (Protocol (Printf.sprintf "unexpected reply %d" op))
                 end))

  let default_max_polls = 1_000

  (* The blocking calls used to demand a reply after one pump and could
     be driven into a forever-loop by callers polling a dead server in a
     wrapper; now the wait itself is bounded — pump, poll, and after
     [max_polls] dry polls give up with an explicit [Timeout]. *)
  let await ?(max_polls = default_max_polls) station ~pump =
    let rec go n =
      match poll_reply station with
      | Some r -> r
      | None ->
          if n <= 0 then begin
            Obs.incr m_client_timeouts;
            (* The conversation is over even though no reply named the
               trace: close this station's open request so an abandoned
               conversation cannot leak an open context. *)
            (match Trace.find_active ~origin:(Net.station_name station) with
            | Some c ->
                Obs.incr m_traces_abandoned;
                Trace.finish c ~status:"abandoned"
            | None -> ());
            Error Timeout
          end
          else begin
            pump ();
            go (n - 1)
          end
    in
    go max_polls

  let fetch ?max_polls station ~server ~name ~pump =
    let ( let* ) = Result.bind in
    let* () = send_get station ~server ~name in
    match await ?max_polls station ~pump with
    | Ok (File (got, contents)) ->
        if String.equal got name then Ok contents
        else Error (Protocol (Printf.sprintf "asked for %S, got %S" name got))
    | Ok Ack -> Error (Protocol "bare acknowledgement to a GET")
    | Error e -> Error e

  let store ?max_polls station ~server ~name contents ~pump =
    let ( let* ) = Result.bind in
    let* () = send_put station ~server ~name contents in
    match await ?max_polls station ~pump with
    | Ok Ack -> Ok ()
    | Ok (File _) -> Error (Protocol "unexpected file in reply to PUT")
    | Error e -> Error e

  let listing ?max_polls station ~server ~pump =
    let ( let* ) = Result.bind in
    let* () = send_list station ~server in
    match await ?max_polls station ~pump with
    | Ok (File (name, contents)) when String.equal name listing_name ->
        Ok (List.filter (fun l -> l <> "") (String.split_on_char '\n' contents))
    | Ok (File _) -> Error (Protocol "unexpected file in reply to LIST")
    | Ok Ack -> Error (Protocol "bare acknowledgement to a LIST")
    | Error e -> Error e
end
