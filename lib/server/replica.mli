(** Replicated Altos: a LOCKSS-style distributed audit-and-repair.

    PRs 2–5 made one Alto survive sector loss; this layer makes a fleet
    survive pack loss. M machines, each a full volume on its own
    fallible drive, hold byte-identical replicas of the pack and
    continuously audit each other over the (also fallible) network:

    - each node walks a cursor over the pack in elevator slices (the
      patrol's machinery, via {!Alto_fs.Audit}), digests each slice
      locally, and asks every peer for its digest of the same range;
    - self + responses are a majority vote. Agreement advances the
      cursor; losing the vote streams the slice's page images from the
      first peer holding the winning digest and installs them under
      read-back verification; no quorum is a tie, skipped and retried
      next lap;
    - every exchange is bounded by a timeout with doubling backoff and
      bounded resends, because the net drops, duplicates and delays
      (see {!Alto_net.Net.set_faults}); responders are stateless, so
      duplicate requests are harmless and resends always safe.

    A node whose pack is wholly lost calls {!rejoin}: the drive is
    reformatted and the audit restarted at sector 0 — every slice then
    loses 1-vs-rest and is rebuilt from the crowd while the survivors
    keep serving; the repaired descriptor is remounted at the lap
    boundary. Metrics: [repl.audits], [repl.votes], [repl.repairs],
    [repl.bytes_repaired], round-trip and repair latency histograms
    ([repl.rtt_us], [repl.repair_us], [repl.digest_us]), timeout /
    resend / tie counters. *)

module Sim_clock = Alto_machine.Sim_clock
module Net = Alto_net.Net
module Fs = Alto_fs.Fs

type node
type fleet

val create :
  ?slice:int ->
  ?timeout_us:int ->
  ?max_attempts:int ->
  ?step_us:int ->
  clock:Sim_clock.t ->
  Net.t ->
  fleet
(** An empty fleet on [net]. [slice] (default 24, max 32 — the repair
    mask is one doubleword) sectors are audited per exchange;
    [timeout_us] (default 500ms) is the first deadline, doubled per
    retry up to [max_attempts] (default 8); [step_us] (default 50) is
    the quantum one {!tick} charges to the shared clock. *)

val join :
  fleet -> name:string -> ?on_new_fs:(Fs.t -> unit) -> Fs.t -> node
(** Attach a station named [name] and enrol the volume in the audit.
    [on_new_fs] fires whenever the node swaps its volume handle — after
    {!rejoin}'s reformat and after a rebuilt descriptor is remounted —
    typically [System.set_fs]. *)

val tick : node -> int
(** One turn of the audit activity: drain the station (answering peers'
    digest/page requests), then advance this node's own audit one step.
    Returns progress units (packets handled + state-machine steps);
    ticking an idle fleet still makes progress — the audit never
    finishes, it patrols. *)

val tick_fleet : fleet -> int
(** One {!tick} per node, in join order. *)

val run_until : fleet -> ?max_ticks:int -> (unit -> bool) -> bool
(** Tick the fleet until the predicate holds or the budget (default
    2M ticks) runs out; returns the predicate's final verdict. *)

val rejoin : node -> unit
(** The node lost its pack: reformat the drive as a virgin volume and
    restart the audit from sector 0. The fleet will vote every slice
    divergent and stream it back. *)

val report : fleet -> string list
(** The executive [peers] view: per node its cursor, lap, last vote
    outcome and repair traffic, plus the net fault census. *)

(** {2 Accessors} *)

val nodes : fleet -> node list
val name : node -> string
val fs : node -> Fs.t
(** The node's current volume handle — replaced by {!rejoin}/remount,
    so callers should re-read it rather than cache it. *)

val cursor : node -> int
val laps : node -> int
val slices_audited : node -> int
val slices_repaired : node -> int
val pages_repaired : node -> int
val pages_served : node -> int
val pages_lost : node -> int
(** Pages a repair could not install: the winner couldn't read them, the
    local write failed, or read-back mismatched. The E19 gate holds this
    at exactly 0. *)

val last_vote : node -> string
val rebuilding : node -> bool
(** Descriptor sectors were repaired this lap and the volume awaits its
    lap-boundary remount. *)
