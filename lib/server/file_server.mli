(** A concurrent network file server and its client.

    §5.2 mentions both halves: a file server built from the standard
    packages over a non-standard disk, and a diskless configuration of
    the operating system that depends "on network communications rather
    than on local disk storage". This package supplies the protocol
    between them: named files fetched from, stored to, and listed on a
    machine that has a pack, by machines that may have none.

    The server is §4's "set of cooperating activities": each admitted
    request becomes an {!Activity} whose disk waits park it on the
    shared standing elevator queue, so many conversations' pages are
    served by common C-SCAN sweeps. The activity table is bounded;
    above the bound new requests are refused with a NAK packet — the
    client retries rather than the server queueing without bound.

    The protocol rides the network's packet and file-transfer framing.
    Requests are single packets ([GET name], [PUT name] followed by the
    file body, [LIST]); replies are file transfers (the content, or a
    listing under the reserved name [";listing"]), ACK/NAK packets, or
    error packets. The simulation is single-threaded, so the legacy
    client calls take a [pump] callback that gives the server its turn —
    the moral equivalent of waiting for the wire — while concurrent
    workloads use the split [send_*]/[poll_reply] interface and drive
    the server with {!tick}. *)

module Net = Alto_net.Net
module Fs = Alto_fs.Fs

type t

type stats = {
  gets : int;
  puts : int;
  lists : int;
  errors : int;
  naks : int;  (** Requests refused because the activity table was full. *)
  send_errors : int;  (** Replies the network refused to carry. *)
}

val create : ?max_active:int -> ?step_us:int -> Fs.t -> Net.station -> t
(** Serve the given volume's root directory on the given station.
    [max_active] (default 16) bounds concurrently admitted requests;
    [step_us] (default 50) is the simulated processor cost per activity
    step. *)

val tick : t -> int
(** One server turn: admit every pending request (spawning activities,
    NAKing above the bound), then run one activity scheduling round.
    Returns the amount of progress made (admissions plus steps run);
    0 means the server is idle. This is what the [ServerTick] level
    service calls. *)

val busy : t -> bool
(** Requests pending on the wire, or activities still live. *)

val step : t -> bool
(** Handle one pending request to completion; [false] when the queue is
    empty. (Legacy single-shot interface.) *)

val serve_pending : t -> int
(** Handle everything pending to completion; returns the number of
    requests admitted. (Legacy interface; never NAKs fewer than
    [max_active] concurrent requests since it drains as it admits.) *)

val stats : t -> stats

val activities : t -> Activity.t
val max_active : t -> int

(** {2 The client side} *)

module Client : sig
  type error =
    | Remote of string  (** The server refused, with its message. *)
    | Busy  (** The server NAKed: its activity table was full. *)
    | Timeout
        (** The bounded poll ran dry: no reply after [max_polls] pumps.
            Counted in [server.client_timeouts]; the station's open
            request trace is closed as abandoned (counted in
            [server.traces_abandoned]) rather than leaked. *)
    | Protocol of string
    | Net_error of Net.error

  val pp_error : Format.formatter -> error -> unit

  type reply = File of string * string  (** name, contents *) | Ack

  (** {3 Split interface for concurrent clients} *)

  val send_get : Net.station -> server:string -> name:string -> (unit, error) result
  val send_put :
    Net.station -> server:string -> name:string -> string -> (unit, error) result
  val send_list : Net.station -> server:string -> (unit, error) result

  val poll_reply : Net.station -> (reply, error) result option
  (** [None] until a complete reply (status packet or whole file
      transfer) is waiting; NAKs surface as [Error Busy]. *)

  (** {3 Blocking convenience interface}

      Each call sends, then alternates [pump ()] with a poll until a
      reply arrives or [max_polls] (default 1000) polls come up dry —
      a server that never answers yields [Error Timeout], never a hang. *)

  val fetch :
    ?max_polls:int ->
    Net.station -> server:string -> name:string -> pump:(unit -> unit) ->
    (string, error) result
  (** Fetch a named file's contents. *)

  val store :
    ?max_polls:int ->
    Net.station -> server:string -> name:string -> string -> pump:(unit -> unit) ->
    (unit, error) result
  (** Create or overwrite a named file on the server. *)

  val listing :
    ?max_polls:int ->
    Net.station -> server:string -> pump:(unit -> unit) ->
    (string list, error) result
end
