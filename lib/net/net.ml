module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Obs = Alto_obs.Obs
module Trace = Alto_obs.Trace

let m_dropped = Obs.counter "net.dropped"
let m_duped = Obs.counter "net.duped"
let m_delayed = Obs.counter "net.delayed"

(* SplitMix64, same generator as the drive's fault model (drive.ml), so
   the message-fault stream is identical on every OCaml version. *)
type prng = { mutable sm_state : int64 }

let prng_of_seed seed = { sm_state = Int64.of_int seed }

let prng_next p =
  p.sm_state <- Int64.add p.sm_state 0x9E3779B97F4A7C15L;
  let z = p.sm_state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let prng_float p =
  Int64.to_float (Int64.shift_right_logical (prng_next p) 11) /. 9007199254740992.0

type faults = {
  f_rng : prng;
  f_drop : float;
  f_dup : float;
  f_delay : float;
  f_delay_us : int;
}

(* [trace] is the sending request's context, stamped automatically by
   [send] — the envelope field every protocol above inherits without
   changing its payload format. (0, 0) is "no context". A fault's
   duplicate carries the same pair, like a real retransmitted frame. *)
type packet = { src : string; payload : Word.t array; trace : int * int }

type station = {
  name : string;
  queue : packet Queue.t;
  net : t;
  (* Packets a fault hold-down has pushed into the future: (due-time,
     tiebreak sequence, packet). Promoted into [queue] once the clock
     passes the due time, so a delayed packet really is overtaken by
     later traffic. *)
  mutable held : (int * int * packet) list;
}

and t = {
  stations : (string, station) Hashtbl.t;
  clock : Sim_clock.t option;
  latency_us : int;
  mutable faults : faults option;
  mutable hold_seq : int;
  mutable n_dropped : int;
  mutable n_duped : int;
  mutable n_delayed : int;
}

type error = Unknown_station of string | Payload_too_long

let pp_error fmt = function
  | Unknown_station name -> Format.fprintf fmt "no station named %S" name
  | Payload_too_long -> Format.pp_print_string fmt "payload exceeds one page"

let max_payload_words = 256

let create ?clock ?(latency_us = 500) () =
  {
    stations = Hashtbl.create 8;
    clock;
    latency_us;
    faults = None;
    hold_seq = 0;
    n_dropped = 0;
    n_duped = 0;
    n_delayed = 0;
  }

let set_faults net ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) ?(delay_us = 2_000)
    ~seed () =
  net.faults <-
    Some
      {
        f_rng = prng_of_seed seed;
        f_drop = drop;
        f_dup = dup;
        f_delay = delay;
        f_delay_us = max 1 delay_us;
      }

let clear_faults net = net.faults <- None
let faults_on net = net.faults <> None
let fault_census net = (net.n_dropped, net.n_duped, net.n_delayed)

let attach net ~name =
  if Hashtbl.mem net.stations name then
    invalid_arg (Printf.sprintf "Net.attach: station %S already attached" name);
  let station = { name; queue = Queue.create (); net; held = [] } in
  Hashtbl.replace net.stations name station;
  station

let station_name s = s.name
let station_clock s = s.net.clock

let now net = match net.clock with Some c -> Sim_clock.now_us c | None -> 0

(* Promote held packets whose due time has passed, oldest due first. *)
let promote s =
  match s.held with
  | [] -> ()
  | held ->
      let t = now s.net in
      let due, still =
        List.partition (fun (due_at, _, _) -> due_at <= t) held
      in
      List.iter
        (fun (_, _, pkt) -> Queue.push pkt s.queue)
        (List.sort compare due);
      s.held <- still

(* Deliver one copy of [pkt] to [dst], applying the delay fault. *)
let deliver net dst pkt =
  match net.faults with
  | Some f when f.f_delay > 0.0 && prng_float f.f_rng < f.f_delay ->
      let extra = 1 + Int64.to_int (Int64.rem (Int64.logand (prng_next f.f_rng) Int64.max_int) (Int64.of_int f.f_delay_us)) in
      net.n_delayed <- net.n_delayed + 1;
      Obs.incr m_delayed;
      net.hold_seq <- net.hold_seq + 1;
      dst.held <- (now net + extra, net.hold_seq, pkt) :: dst.held
  | _ -> Queue.push pkt dst.queue

let send s ~to_ payload =
  if Array.length payload > max_payload_words then Error Payload_too_long
  else
    match Hashtbl.find_opt s.net.stations to_ with
    | None -> Error (Unknown_station to_)
    | Some dst ->
        let net = s.net in
        (match net.clock with
        | Some clock -> Sim_clock.advance_us clock net.latency_us
        | None -> ());
        let pkt = { src = s.name; payload = Array.copy payload; trace = Trace.wire () } in
        (match net.faults with
        | None -> Queue.push pkt dst.queue
        | Some f ->
            if f.f_drop > 0.0 && prng_float f.f_rng < f.f_drop then begin
              net.n_dropped <- net.n_dropped + 1;
              Obs.incr m_dropped
            end
            else begin
              deliver net dst pkt;
              if f.f_dup > 0.0 && prng_float f.f_rng < f.f_dup then begin
                net.n_duped <- net.n_duped + 1;
                Obs.incr m_duped;
                deliver net dst { pkt with payload = Array.copy pkt.payload }
              end
            end);
        Ok ()

let receive s =
  promote s;
  Queue.take_opt s.queue

let pending s =
  promote s;
  Queue.length s.queue

(* File transfer framing: word 0 is the kind — 1 header (name follows:
   length word + packed string), 2 data (chunk), 3 trailer. *)
let kind_header = 1
let kind_data = 2
let kind_trailer = 3

let chunk_bytes = (max_payload_words - 2) * 2

let send_file s ~to_ ~name data =
  let ( let* ) = Result.bind in
  let header =
    Array.concat
      [
        [| Word.of_int kind_header; Word.of_int_exn (String.length name) |];
        Word.words_of_string name;
      ]
  in
  let* () = send s ~to_ header in
  let total = String.length data in
  let rec chunks pos =
    if pos >= total then Ok ()
    else begin
      let len = min chunk_bytes (total - pos) in
      let words = Word.words_of_string (String.sub data pos len) in
      let* () =
        send s ~to_
          (Array.concat [ [| Word.of_int kind_data; Word.of_int_exn len |]; words ])
      in
      chunks (pos + len)
    end
  in
  (* Data packets carry a byte count so odd-length chunks survive. *)
  let* () =
    match chunks 0 with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  send s ~to_ [| Word.of_int kind_trailer |]

let receive_file_traced s =
  promote s;
  (* Peek: only consume if a complete file heads the queue. The header
     packet's envelope context speaks for the whole transfer. *)
  let items = List.of_seq (Queue.to_seq s.queue) in
  let parse = function
    | { payload; trace; _ } :: rest
      when Array.length payload >= 2 && Word.to_int payload.(0) = kind_header ->
        let name_len = Word.to_int payload.(1) in
        let name =
          Word.string_of_words (Array.sub payload 2 (Array.length payload - 2)) ~len:name_len
        in
        let buffer = Buffer.create 512 in
        let rec data consumed = function
          | { payload; _ } :: rest
            when Array.length payload >= 2 && Word.to_int payload.(0) = kind_data ->
              let len = Word.to_int payload.(1) in
              let words = Array.sub payload 2 (Array.length payload - 2) in
              Buffer.add_string buffer (Word.string_of_words words ~len);
              data (consumed + 1) rest
          | { payload; _ } :: _
            when Array.length payload >= 1 && Word.to_int payload.(0) = kind_trailer ->
              Some (name, Buffer.contents buffer, consumed + 2, trace)
          | _ -> None
        in
        data 0 rest
    | _ -> None
  in
  match parse items with
  | None -> None
  | Some (name, contents, packets, trace) ->
      for _ = 1 to packets do
        ignore (Queue.pop s.queue)
      done;
      Some (name, contents, trace)

let receive_file s =
  match receive_file_traced s with
  | None -> None
  | Some (name, contents, _) -> Some (name, contents)
