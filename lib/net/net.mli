(** A simulated local network.

    The paper's machine room had an Ethernet: the printing server
    "accepts files from a local communications network and prints them"
    (§4), and a diskless configuration of the system ran on "network
    communications rather than … local disk storage" (§5.2). The packet
    representation is the standardized level here, just as the sector is
    for the disk: stations exchange word arrays; everything above that is
    convention.

    Delivery is reliable and in order (a queue per station) by default,
    with an optional per-packet latency charged to a simulated clock.
    That is deliberately simpler than a real Ethernet — most workloads
    exercise control structure, not loss recovery. Workloads that DO
    exercise loss recovery (the replication audit) turn on a seeded
    message-fault mode: packets are dropped, duplicated, or delayed
    (held and released once the clock passes a due time, so delayed
    packets genuinely arrive out of order) by a SplitMix64 stream —
    deterministic for a fixed seed, off by default. *)

module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock

type t
type station

type packet = { src : string; payload : Word.t array; trace : int * int }
(** [trace] is the sending request's {!Alto_obs.Trace} context as an id
    pair ([(0, 0)] = none), stamped automatically by {!send} from the
    current context — propagation every protocol above inherits without
    touching its payload format. A duplicated or delayed packet carries
    the same pair. *)

type error = Unknown_station of string | Payload_too_long

val pp_error : Format.formatter -> error -> unit

val max_payload_words : int
(** 256 — one page per packet, like the Alto's pup-sized frames. *)

val create : ?clock:Sim_clock.t -> ?latency_us:int -> unit -> t
(** [latency_us] (default 500) is charged to [clock] per packet sent,
    when a clock is given. *)

val set_faults :
  t ->
  ?drop:float ->
  ?dup:float ->
  ?delay:float ->
  ?delay_us:int ->
  seed:int ->
  unit ->
  unit
(** Make the wire lie. Each probability is per packet (defaults 0);
    a delayed packet is held for 1..[delay_us] (default 2000) simulated
    microseconds past its send and only delivered once the clock gets
    there. Counted in [net.dropped] / [net.duped] / [net.delayed] and in
    the per-net census. Without a clock, delay degrades to in-order
    delivery (there is no time to be late against). *)

val clear_faults : t -> unit

val faults_on : t -> bool

val fault_census : t -> int * int * int
(** (dropped, duplicated, delayed) on this net since creation. *)

val attach : t -> name:string -> station
(** Join the network. Raises [Invalid_argument] on a duplicate name. *)

val station_name : station -> string

val station_clock : station -> Sim_clock.t option
(** The network's simulated clock, when it has one — what a client
    mints request traces against. *)

val send : station -> to_:string -> Word.t array -> (unit, error) result
val receive : station -> packet option
val pending : station -> int

(** {2 File transfer}

    A minimal convention on top of raw packets: a header packet carrying
    the file's name, data packets of up to a page each, and a trailer.
    Enough to feed a print server. *)

val send_file : station -> to_:string -> name:string -> string -> (unit, error) result

val receive_file : station -> (string * string) option
(** Reassemble the next complete file from the queue, if its trailer has
    arrived; non-file packets ahead of it are delivered by {!receive}
    first (mixing conventions on one station is the caller's problem,
    as the paper would cheerfully note). *)

val receive_file_traced : station -> (string * string * (int * int)) option
(** Like {!receive_file}, also returning the header packet's envelope
    trace context — how a file reply finds the request it answers. *)
