module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Obs = Alto_obs.Obs

(* Process-wide metrics, aggregated across every drive; per-drive
   figures stay in [stats]. *)
let m_operations = Obs.counter "disk.operations"
let m_seeks = Obs.counter "disk.seeks"
let m_seek_us = Obs.counter "disk.seek_us"
let m_rotational_wait_us = Obs.counter "disk.rotational_wait_us"
let m_transfer_us = Obs.counter "disk.transfer_us"
let m_words_read = Obs.counter "disk.words_read"
let m_words_written = Obs.counter "disk.words_written"
let m_check_failures = Obs.counter "disk.check_failures"
let m_bad_sector_errors = Obs.counter "disk.bad_sector_errors"
let m_seek_distance = Obs.histogram "disk.seek_distance_cylinders"

type action = Read | Check | Write

type op = {
  header : action option;
  label : action option;
  value : action option;
}

let op_none = { header = None; label = None; value = None }

type error =
  | Bad_sector
  | Check_mismatch of {
      part : Sector.part;
      offset : int;
      memory : Word.t;
      disk : Word.t;
    }

let pp_error fmt = function
  | Bad_sector -> Format.pp_print_string fmt "bad sector"
  | Check_mismatch { part; offset; memory; disk } ->
      Format.fprintf fmt "check mismatch in %a word %d: memory %a, disk %a"
        Sector.pp_part part offset Word.pp memory Word.pp disk

type stats = {
  operations : int;
  seeks : int;
  seek_us : int;
  rotational_wait_us : int;
  transfer_us : int;
  words_read : int;
  words_written : int;
  check_failures : int;
}

let zero_stats =
  {
    operations = 0;
    seeks = 0;
    seek_us = 0;
    rotational_wait_us = 0;
    transfer_us = 0;
    words_read = 0;
    words_written = 0;
    check_failures = 0;
  }

exception Power_failure

type t = {
  geometry : Geometry.t;
  pack_id : int;
  clock : Sim_clock.t;
  sectors : Sector.t array;
  bad : bool array;
  mutable current_cylinder : int;
  mutable stats : stats;
  mutable power_budget : int option;
  value_unreadable : bool array;
}

let format_header t index =
  let s = t.sectors.(index) in
  s.Sector.header.(0) <- Word.of_int t.pack_id;
  s.Sector.header.(1) <- Disk_address.to_word (Disk_address.of_index index)

let create ?clock ~pack_id geometry =
  (match Geometry.validate geometry with
  | Ok () -> ()
  | Error e -> invalid_arg ("Drive.create: " ^ e));
  let n = Geometry.sector_count geometry in
  let clock = match clock with Some c -> c | None -> Sim_clock.create () in
  let t =
    {
      geometry;
      pack_id;
      clock;
      sectors = Array.init n (fun _ -> Sector.create ());
      bad = Array.make n false;
      current_cylinder = 0;
      stats = zero_stats;
      power_budget = None;
      value_unreadable = Array.make n false;
    }
  in
  for i = 0 to n - 1 do
    format_header t i
  done;
  t

let geometry t = t.geometry
let clock t = t.clock
let pack_id t = t.pack_id
let sector_count t = Array.length t.sectors

let check_address t addr =
  let i = Disk_address.to_index addr in
  if i >= sector_count t then
    invalid_arg (Printf.sprintf "Drive: address %d beyond disk (%d sectors)" i (sector_count t))
  else i

(* Write-continuation rule: a write on a part forces writes on every
   later part of the sector. *)
let validate_continuation op =
  let is_write = function Some Write -> true | Some Read | Some Check | None -> false in
  let violation =
    (is_write op.header && not (is_write op.label && is_write op.value))
    || (is_write op.label && not (is_write op.value))
  in
  if violation then
    invalid_arg "Drive.run: once a write is begun it must continue through the rest of the sector"

let validate_buffer part action buf =
  match (action, buf) with
  | None, _ -> ()
  | Some _, None ->
      invalid_arg
        (Format.asprintf "Drive.run: %a action requires a buffer" Sector.pp_part part)
  | Some _, Some b ->
      if Array.length b <> Sector.part_size part then
        invalid_arg
          (Format.asprintf "Drive.run: %a buffer must have %d words" Sector.pp_part
             part (Sector.part_size part))

let charge_motion t index =
  let cylinder, _, sector = Disk_address.chs t.geometry (Disk_address.of_index index) in
  let seek_us =
    Geometry.seek_time_us t.geometry ~from_cylinder:t.current_cylinder
      ~to_cylinder:cylinder
  in
  if seek_us > 0 then begin
    Sim_clock.advance_us t.clock seek_us;
    t.stats <- { t.stats with seeks = t.stats.seeks + 1; seek_us = t.stats.seek_us + seek_us };
    Obs.incr m_seeks;
    Obs.add m_seek_us seek_us;
    Obs.observe m_seek_distance (abs (cylinder - t.current_cylinder));
    Obs.event ~clock:t.clock
      ~fields:
        [
          ("pack", Obs.I t.pack_id);
          ("from", Obs.I t.current_cylinder);
          ("to", Obs.I cylinder);
          ("us", Obs.I seek_us);
        ]
      "disk.seek"
  end;
  t.current_cylinder <- cylinder;
  let rotation = t.geometry.Geometry.rotation_us in
  let sector_time = Geometry.sector_time_us t.geometry in
  let angle = Sim_clock.now_us t.clock mod rotation in
  let slot_start = sector * sector_time in
  let wait = (slot_start - angle + rotation) mod rotation in
  Sim_clock.advance_us t.clock wait;
  t.stats <-
    { t.stats with rotational_wait_us = t.stats.rotational_wait_us + wait };
  Obs.add m_rotational_wait_us wait;
  Sim_clock.advance_us t.clock sector_time;
  t.stats <- { t.stats with transfer_us = t.stats.transfer_us + sector_time };
  Obs.add m_transfer_us sector_time

(* Perform one part's action; [Error _] aborts the rest of the sector. *)
let perform t part action disk_words buf =
  let n = Array.length disk_words in
  match action with
  | Read ->
      Array.blit disk_words 0 buf 0 n;
      t.stats <- { t.stats with words_read = t.stats.words_read + n };
      Obs.add m_words_read n;
      Ok ()
  | Write ->
      Array.blit buf 0 disk_words 0 n;
      t.stats <- { t.stats with words_written = t.stats.words_written + n };
      Obs.add m_words_written n;
      Ok ()
  | Check ->
      let rec scan i =
        if i >= n then Ok ()
        else if Word.equal buf.(i) Word.zero then begin
          buf.(i) <- disk_words.(i);
          scan (i + 1)
        end
        else if Word.equal buf.(i) disk_words.(i) then scan (i + 1)
        else begin
          t.stats <- { t.stats with check_failures = t.stats.check_failures + 1 };
          Obs.incr m_check_failures;
          Obs.event ~clock:t.clock
            ~fields:
              [
                ("pack", Obs.I t.pack_id);
                ("part", Obs.S (Format.asprintf "%a" Sector.pp_part part));
                ("offset", Obs.I i);
              ]
            "disk.check_failure";
          Error (Check_mismatch { part; offset = i; memory = buf.(i); disk = disk_words.(i) })
        end
      in
      scan 0

let set_power_budget t budget =
  if Option.fold ~none:false ~some:(fun n -> n < 0) budget then
    invalid_arg "Drive.set_power_budget: negative budget"
  else t.power_budget <- budget

let run t addr op ?header ?label ?value () =
  (match t.power_budget with
  | Some 0 -> raise Power_failure
  | Some n -> t.power_budget <- Some (n - 1)
  | None -> ());
  let index = check_address t addr in
  validate_continuation op;
  validate_buffer Sector.Header op.header header;
  validate_buffer Sector.Label op.label label;
  validate_buffer Sector.Value op.value value;
  charge_motion t index;
  t.stats <- { t.stats with operations = t.stats.operations + 1 };
  Obs.incr m_operations;
  if t.bad.(index) then begin
    Obs.incr m_bad_sector_errors;
    Error Bad_sector
  end
  else
    let sector = t.sectors.(index) in
    let step part action buf k =
      match action with
      | None -> k ()
      | Some action ->
          if
            part = Sector.Value
            && t.value_unreadable.(index)
            && (action = Read || action = Check)
          then begin
            Obs.incr m_bad_sector_errors;
            Error Bad_sector
          end
          else (
            let buf = Option.get buf in
            match perform t part action (Sector.part_of sector part) buf with
            | Ok () -> k ()
            | Error e -> Error e)
    in
    step Sector.Header op.header header (fun () ->
        step Sector.Label op.label label (fun () ->
            step Sector.Value op.value value (fun () -> Ok ())))

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats

let peek t addr =
  let index = check_address t addr in
  Sector.copy t.sectors.(index)

let poke t addr part words =
  let index = check_address t addr in
  let target = Sector.part_of t.sectors.(index) part in
  if Array.length words <> Array.length target then
    invalid_arg "Drive.poke: wrong part size"
  else Array.blit words 0 target 0 (Array.length target)

let set_bad t addr flag =
  let index = check_address t addr in
  t.bad.(index) <- flag

let is_bad t addr =
  let index = check_address t addr in
  t.bad.(index)

let set_value_unreadable t addr flag =
  let index = check_address t addr in
  t.value_unreadable.(index) <- flag

let is_value_unreadable t addr =
  let index = check_address t addr in
  t.value_unreadable.(index)
