module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
module Trace = Alto_obs.Trace

(* Process-wide metrics, aggregated across every drive; per-drive
   figures stay in [stats]. *)
let m_operations = Obs.counter "disk.operations"
let m_seeks = Obs.counter "disk.seeks"
let m_seek_us = Obs.counter "disk.seek_us"
let m_rotational_wait_us = Obs.counter "disk.rotational_wait_us"
let m_transfer_us = Obs.counter "disk.transfer_us"
let m_words_read = Obs.counter "disk.words_read"
let m_words_written = Obs.counter "disk.words_written"
let m_check_failures = Obs.counter "disk.check_failures"
let m_bad_sector_errors = Obs.counter "disk.bad_sector_errors"
let m_soft_errors = Obs.counter "disk.soft_errors"
let m_degraded_sectors = Obs.counter "disk.degraded_sectors"
let m_restores = Obs.counter "disk.restores"
let m_seek_distance = Obs.histogram "disk.seek_distance_cylinders"

(* Per-operation motion latency (seek + rotational wait + transfer), the
   distribution behind the disk.op.p99 regression gate. *)
let m_op_us = Obs.histogram "disk.op_us"

type action = Read | Check | Write

type op = {
  header : action option;
  label : action option;
  value : action option;
}

let op_none = { header = None; label = None; value = None }

type error =
  | Bad_sector
  | Check_mismatch of {
      part : Sector.part;
      offset : int;
      memory : Word.t;
      disk : Word.t;
    }
  | Transient of Sector.part

let pp_error fmt = function
  | Bad_sector -> Format.pp_print_string fmt "bad sector"
  | Check_mismatch { part; offset; memory; disk } ->
      Format.fprintf fmt "check mismatch in %a word %d: memory %a, disk %a"
        Sector.pp_part part offset Word.pp memory Word.pp disk
  | Transient part ->
      Format.fprintf fmt "transient error reading %a (retry may succeed)"
        Sector.pp_part part

type stats = {
  operations : int;
  seeks : int;
  seek_us : int;
  rotational_wait_us : int;
  transfer_us : int;
  words_read : int;
  words_written : int;
  check_failures : int;
  soft_errors : int;
}

let zero_stats =
  {
    operations = 0;
    seeks = 0;
    seek_us = 0;
    rotational_wait_us = 0;
    transfer_us = 0;
    words_read = 0;
    words_written = 0;
    check_failures = 0;
    soft_errors = 0;
  }

exception Power_failure

type tear = Torn_label | Torn_value

(* The crash-point countdown: [cp_left] more operations that write are
   allowed to complete; the next one kills the machine. Without a tear
   the fatal operation never starts (the power died between sectors);
   with one it stops partway through a part's transfer. *)
type crash_point = { mutable cp_left : int; cp_tear : tear option }

(* SplitMix64, so the soft-error stream is identical on every OCaml
   version (the stdlib's [Random] algorithm changed between 4.x and 5.x,
   and the CI regression gate compares retry counts across both). *)
type prng = { mutable sm_state : int64 }

let prng_of_seed seed = { sm_state = Int64.of_int seed }

let prng_next p =
  p.sm_state <- Int64.add p.sm_state 0x9E3779B97F4A7C15L;
  let z = p.sm_state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A float in [0, 1) from the top 53 bits. *)
let prng_float p =
  Int64.to_float (Int64.shift_right_logical (prng_next p) 11) /. 9007199254740992.0

(* A sector whose surface is going: its own soft-error rate climbs with
   every failure until, after [m_degrade_after] of them, the sector
   degrades into a permanent {!Bad_sector}. *)
type marginal = {
  mutable m_rate : float;
  m_growth : float;
  m_degrade_after : int;
  mutable m_failures : int;
}

type t = {
  geometry : Geometry.t;
  pack_id : int;
  clock : Sim_clock.t;
  sectors : Sector.t array;
  bad : bool array;
  mutable current_cylinder : int;
  mutable stats : stats;
  mutable power_budget : int option;
  mutable crash_point : crash_point option;
  mutable write_ops : int;
  (* Torn parts: a crash stopped a write partway through this part, so
     the controller's checksum no longer covers it — reads and checks
     fail hard until a full rewrite of the part restores it. One bit
     per part, indexed by sector. *)
  torn : int array;
  value_unreadable : bool array;
  mutable soft_rng : prng;
  mutable soft_rate : float;
  marginals : (int, marginal) Hashtbl.t;
  (* Per-sector label generation: bumped by anything that could make a
     previously verified copy of the label stale — a label write (in-band
     or poke), the sector turning bad, or any soft-error trip (retry
     evidence: the surface is suspect, cached knowledge about it is
     not). The label cache upstairs validates its entries against this
     counter, so invalidation needs no callback plumbing. *)
  label_gen : int array;
}

let format_header t index =
  let s = t.sectors.(index) in
  s.Sector.header.(0) <- Word.of_int t.pack_id;
  s.Sector.header.(1) <- Disk_address.to_word (Disk_address.of_index index)

let create ?clock ~pack_id geometry =
  (match Geometry.validate geometry with
  | Ok () -> ()
  | Error e -> invalid_arg ("Drive.create: " ^ e));
  let n = Geometry.sector_count geometry in
  let clock = match clock with Some c -> c | None -> Sim_clock.create () in
  let t =
    {
      geometry;
      pack_id;
      clock;
      sectors = Array.init n (fun _ -> Sector.create ());
      bad = Array.make n false;
      current_cylinder = 0;
      stats = zero_stats;
      power_budget = None;
      crash_point = None;
      write_ops = 0;
      torn = Array.make n 0;
      value_unreadable = Array.make n false;
      soft_rng = prng_of_seed pack_id;
      soft_rate = 0.;
      marginals = Hashtbl.create 8;
      label_gen = Array.make n 0;
    }
  in
  for i = 0 to n - 1 do
    format_header t i
  done;
  t

let geometry t = t.geometry
let clock t = t.clock
let pack_id t = t.pack_id
let sector_count t = Array.length t.sectors

let check_address t addr =
  let i = Disk_address.to_index addr in
  if i >= sector_count t then
    invalid_arg (Printf.sprintf "Drive: address %d beyond disk (%d sectors)" i (sector_count t))
  else i

(* Write-continuation rule: a write on a part forces writes on every
   later part of the sector. *)
let validate_continuation op =
  let is_write = function Some Write -> true | Some Read | Some Check | None -> false in
  let violation =
    (is_write op.header && not (is_write op.label && is_write op.value))
    || (is_write op.label && not (is_write op.value))
  in
  if violation then
    invalid_arg "Drive.run: once a write is begun it must continue through the rest of the sector"

let validate_buffer part action buf =
  match (action, buf) with
  | None, _ -> ()
  | Some _, None ->
      invalid_arg
        (Format.asprintf "Drive.run: %a action requires a buffer" Sector.pp_part part)
  | Some _, Some b ->
      if Array.length b <> Sector.part_size part then
        invalid_arg
          (Format.asprintf "Drive.run: %a buffer must have %d words" Sector.pp_part
             part (Sector.part_size part))

let charge_motion t index =
  let cylinder, _, sector = Disk_address.chs t.geometry (Disk_address.of_index index) in
  let seek_us =
    Geometry.seek_time_us t.geometry ~from_cylinder:t.current_cylinder
      ~to_cylinder:cylinder
  in
  if seek_us > 0 then begin
    Sim_clock.advance_us t.clock seek_us;
    t.stats <- { t.stats with seeks = t.stats.seeks + 1; seek_us = t.stats.seek_us + seek_us };
    Obs.incr m_seeks;
    Obs.add m_seek_us seek_us;
    Obs.observe m_seek_distance (abs (cylinder - t.current_cylinder));
    Obs.event ~clock:t.clock
      ~fields:
        [
          ("pack", Obs.I t.pack_id);
          ("from", Obs.I t.current_cylinder);
          ("to", Obs.I cylinder);
          ("us", Obs.I seek_us);
        ]
      "disk.seek"
  end;
  (* The request tracer keeps the same books as the span profiler:
     identical amounts at identical sites, so the two accountings can
     be balanced against each other and against [disk.*]. *)
  Prof.charge_seek seek_us;
  Trace.charge_seek seek_us;
  t.current_cylinder <- cylinder;
  let rotation = t.geometry.Geometry.rotation_us in
  let sector_time = Geometry.sector_time_us t.geometry in
  let angle = Sim_clock.now_us t.clock mod rotation in
  let slot_start = sector * sector_time in
  let wait = (slot_start - angle + rotation) mod rotation in
  Sim_clock.advance_us t.clock wait;
  t.stats <-
    { t.stats with rotational_wait_us = t.stats.rotational_wait_us + wait };
  Obs.add m_rotational_wait_us wait;
  Prof.charge_rotation wait;
  Trace.charge_rotation wait;
  Sim_clock.advance_us t.clock sector_time;
  t.stats <- { t.stats with transfer_us = t.stats.transfer_us + sector_time };
  Obs.add m_transfer_us sector_time;
  Prof.charge_transfer sector_time;
  Trace.charge_transfer sector_time;
  Obs.observe m_op_us (seek_us + wait + sector_time)

(* Perform one part's action; [Error _] aborts the rest of the sector. *)
let perform t part action disk_words buf =
  let n = Array.length disk_words in
  match action with
  | Read ->
      Array.blit disk_words 0 buf 0 n;
      t.stats <- { t.stats with words_read = t.stats.words_read + n };
      Obs.add m_words_read n;
      Ok ()
  | Write ->
      Array.blit buf 0 disk_words 0 n;
      t.stats <- { t.stats with words_written = t.stats.words_written + n };
      Obs.add m_words_written n;
      Ok ()
  | Check ->
      let rec scan i =
        if i >= n then Ok ()
        else if Word.equal buf.(i) Word.zero then begin
          buf.(i) <- disk_words.(i);
          scan (i + 1)
        end
        else if Word.equal buf.(i) disk_words.(i) then scan (i + 1)
        else begin
          t.stats <- { t.stats with check_failures = t.stats.check_failures + 1 };
          Obs.incr m_check_failures;
          Obs.event ~clock:t.clock
            ~fields:
              [
                ("pack", Obs.I t.pack_id);
                ("part", Obs.S (Format.asprintf "%a" Sector.pp_part part));
                ("offset", Obs.I i);
              ]
            "disk.check_failure";
          Error (Check_mismatch { part; offset = i; memory = buf.(i); disk = disk_words.(i) })
        end
      in
      scan 0

let set_power_budget t budget =
  if Option.fold ~none:false ~some:(fun n -> n < 0) budget then
    invalid_arg "Drive.set_power_budget: negative budget"
  else t.power_budget <- budget

(* {2 The crash-point model} *)

let part_bit = function Sector.Header -> 1 | Sector.Label -> 2 | Sector.Value -> 4

let set_crash_point t ?tear ~after_writes () =
  if after_writes < 0 then invalid_arg "Drive.set_crash_point: negative countdown"
  else t.crash_point <- Some { cp_left = after_writes; cp_tear = tear }

let clear_crash_point t = t.crash_point <- None
let crash_pending t = t.crash_point <> None
let write_ops t = t.write_ops

let is_torn t addr = t.torn.(check_address t addr) <> 0

let clear_torn t addr = t.torn.(check_address t addr) <- 0

(* The fatal operation of a torn crash: power dies while the heads are
   writing. Actions before the first write (the label check guarding a
   data write) still ran — an aborted check means nothing was written —
   then each written part is transferred in order until the torn one,
   which stops partway through: a prefix of the caller's words reaches
   the platter and the part's checksum is left invalid, so every later
   read of it fails hard until a full rewrite. Either way the machine
   is dead when this returns, so it never returns: {!Power_failure}. *)
let crash_torn t index op ?header ?label ?value tear =
  charge_motion t index;
  t.stats <- { t.stats with operations = t.stats.operations + 1 };
  Obs.incr m_operations;
  if not t.bad.(index) then begin
    let sector = t.sectors.(index) in
    let parts =
      [
        (Sector.Header, op.header, header);
        (Sector.Label, op.label, label);
        (Sector.Value, op.value, value);
      ]
    in
    let written =
      List.filter_map
        (fun (part, action, buf) ->
          match action with Some Write -> Some (part, Option.get buf) | _ -> None)
        parts
    in
    (* Which written part stops halfway: the first for [Torn_label], the
       last for [Torn_value] — for a label+value write these are exactly
       the two sub-sector failure modes §3.3's atomicity assumption
       hides: label torn with the value untouched, or label committed
       with the value half-transferred. *)
    let target =
      match (tear, written) with
      | _, [] -> None
      | Torn_label, (part, _) :: _ -> Some part
      | Torn_value, ws -> Some (fst (List.nth ws (List.length ws - 1)))
    in
    let pre_writes_ok =
      List.for_all
        (fun (part, action, buf) ->
          match action with
          | Some ((Read | Check) as a) ->
              perform t part a (Sector.part_of sector part) (Option.get buf) = Ok ()
          | Some Write | None -> true)
        parts
    in
    if pre_writes_ok then
      List.iter
        (fun (part, buf) ->
          let disk_words = Sector.part_of sector part in
          if part = Sector.Label then t.label_gen.(index) <- t.label_gen.(index) + 1;
          if target = Some part then begin
            let n = Array.length disk_words in
            let cut =
              1
              + Int64.to_int
                  (Int64.rem
                     (Int64.shift_right_logical (prng_next t.soft_rng) 1)
                     (Int64.of_int (max 1 (n - 1))))
            in
            Array.blit buf 0 disk_words 0 cut;
            t.torn.(index) <- t.torn.(index) lor part_bit part;
            t.label_gen.(index) <- t.label_gen.(index) + 1;
            Obs.event ~clock:t.clock
              ~fields:
                [
                  ("pack", Obs.I t.pack_id);
                  ("addr", Obs.I index);
                  ("part", Obs.S (Format.asprintf "%a" Sector.pp_part part));
                  ("words", Obs.I cut);
                ]
              "disk.torn_write";
            raise Power_failure
          end
          else Array.blit buf 0 disk_words 0 (Array.length disk_words))
        written
  end;
  raise Power_failure

let has_write_action op =
  let w = function Some Write -> true | Some Read | Some Check | None -> false in
  w op.header || w op.label || w op.value

(* One soft-error draw per part access that reads the surface. Returns
   true when this access fails transiently; a marginal sector's failure
   also feeds its degradation. *)
let soft_error_trips t index part =
  (* Marginal decay is a data-surface disease (like value_unreadable):
     it afflicts only the Value part, so the sector's label stays
     sweepable while its data grows ever harder to read. The base rate
     models electrical noise and hits every part. *)
  let marginal =
    if part = Sector.Value then Hashtbl.find_opt t.marginals index else None
  in
  let rate =
    t.soft_rate +. (match marginal with Some m -> m.m_rate | None -> 0.)
  in
  rate > 0.
  && prng_float t.soft_rng < rate
  && begin
       t.stats <- { t.stats with soft_errors = t.stats.soft_errors + 1 };
       t.label_gen.(index) <- t.label_gen.(index) + 1;
       Obs.incr m_soft_errors;
       Obs.event ~clock:t.clock
         ~fields:
           [
             ("pack", Obs.I t.pack_id);
             ("addr", Obs.I index);
             ("part", Obs.S (Format.asprintf "%a" Sector.pp_part part));
           ]
         "disk.soft_error";
       (match marginal with
       | None -> ()
       | Some m ->
           m.m_failures <- m.m_failures + 1;
           m.m_rate <- Float.min 1.0 (m.m_rate *. m.m_growth);
           if m.m_failures >= m.m_degrade_after && not t.bad.(index) then begin
             t.bad.(index) <- true;
             Obs.incr m_degraded_sectors;
             Obs.event ~clock:t.clock
               ~fields:[ ("pack", Obs.I t.pack_id); ("addr", Obs.I index) ]
               "disk.sector_degraded"
           end);
       true
     end

let run t addr op ?header ?label ?value () =
  (match t.power_budget with
  | Some 0 -> raise Power_failure
  | Some n -> t.power_budget <- Some (n - 1)
  | None -> ());
  let index = check_address t addr in
  validate_continuation op;
  validate_buffer Sector.Header op.header header;
  validate_buffer Sector.Label op.label label;
  validate_buffer Sector.Value op.value value;
  if has_write_action op then begin
    t.write_ops <- t.write_ops + 1;
    match t.crash_point with
    | Some cp when cp.cp_left = 0 -> (
        t.crash_point <- None;
        match cp.cp_tear with
        | None -> raise Power_failure
        | Some tear -> crash_torn t index op ?header ?label ?value tear)
    | Some cp -> cp.cp_left <- cp.cp_left - 1
    | None -> ()
  end;
  charge_motion t index;
  t.stats <- { t.stats with operations = t.stats.operations + 1 };
  Obs.incr m_operations;
  if t.bad.(index) then begin
    Obs.incr m_bad_sector_errors;
    Error Bad_sector
  end
  else
    let sector = t.sectors.(index) in
    let step part action buf k =
      match action with
      | None -> k ()
      | Some action ->
          if t.torn.(index) land part_bit part <> 0 && (action = Read || action = Check)
          then begin
            (* A torn part: the crash left its checksum invalid, so the
               controller rejects the transfer without moving data. A
               full rewrite of the part (below) heals it. *)
            Obs.incr m_bad_sector_errors;
            Error Bad_sector
          end
          else if
            part = Sector.Value
            && t.value_unreadable.(index)
            && (action = Read || action = Check)
          then begin
            Obs.incr m_bad_sector_errors;
            Error Bad_sector
          end
          else if
            (action = Read || action = Check) && soft_error_trips t index part
          then
            (* The controller's checksum caught a misread before any data
               moved: the buffers are untouched and a retry may well
               succeed. Degradation may just have made the sector
               permanently bad, in which case the retry reports that. *)
            Error (Transient part)
          else (
            let buf = Option.get buf in
            if action = Write && t.torn.(index) land part_bit part <> 0 then
              t.torn.(index) <- t.torn.(index) land lnot (part_bit part);
            if part = Sector.Label && action = Write then
              t.label_gen.(index) <- t.label_gen.(index) + 1;
            match perform t part action (Sector.part_of sector part) buf with
            | Ok () -> k ()
            | Error e -> Error e)
    in
    step Sector.Header op.header header (fun () ->
        step Sector.Label op.label label (fun () ->
            step Sector.Value op.value value (fun () -> Ok ())))

let stats t = t.stats
let reset_stats t = t.stats <- zero_stats
let current_cylinder t = t.current_cylinder

(* Rotational position sensing: the controller watches the sector marks
   pass under the heads, so a scheduler can know — before committing to
   a seek — which sector slot will be the first one catchable once the
   heads settle on [cylinder]. Mirrors [charge_motion]'s arithmetic
   exactly: a sector is catchable iff its slot boundary is at or after
   the arrival angle. *)
let catch_slot t ~cylinder =
  let seek_us =
    Geometry.seek_time_us t.geometry ~from_cylinder:t.current_cylinder
      ~to_cylinder:cylinder
  in
  let rotation = t.geometry.Geometry.rotation_us in
  let sector_time = Geometry.sector_time_us t.geometry in
  let arrival = (Sim_clock.now_us t.clock + seek_us) mod rotation in
  (arrival + sector_time - 1) / sector_time mod t.geometry.Geometry.sectors_per_track

let label_generation t addr = t.label_gen.(check_address t addr)

let bump_label_generation t addr =
  let index = check_address t addr in
  t.label_gen.(index) <- t.label_gen.(index) + 1

let peek t addr =
  let index = check_address t addr in
  Sector.copy t.sectors.(index)

let poke t addr part words =
  let index = check_address t addr in
  let target = Sector.part_of t.sectors.(index) part in
  if Array.length words <> Array.length target then
    invalid_arg "Drive.poke: wrong part size"
  else begin
    (* Any out-of-band mutation of the platter — whichever part — is
       staleness evidence: every in-core copy of the sector must die,
       or a cache would keep serving bits the "physics" changed. *)
    t.label_gen.(index) <- t.label_gen.(index) + 1;
    t.torn.(index) <- t.torn.(index) land lnot (part_bit part);
    Array.blit words 0 target 0 (Array.length target)
  end

let set_bad t addr flag =
  let index = check_address t addr in
  if flag then t.label_gen.(index) <- t.label_gen.(index) + 1;
  t.bad.(index) <- flag

let is_bad t addr =
  let index = check_address t addr in
  t.bad.(index)

let set_value_unreadable t addr flag =
  let index = check_address t addr in
  (* The surface just died (or healed) under whatever is cached. *)
  if flag <> t.value_unreadable.(index) then
    t.label_gen.(index) <- t.label_gen.(index) + 1;
  t.value_unreadable.(index) <- flag

let is_value_unreadable t addr =
  let index = check_address t addr in
  t.value_unreadable.(index)

(* {2 The transient-fault model} *)

let set_soft_errors t ~seed ~rate =
  if rate < 0. || rate > 1. then
    invalid_arg "Drive.set_soft_errors: rate out of [0,1]"
  else begin
    t.soft_rng <- prng_of_seed seed;
    t.soft_rate <- rate
  end

let soft_error_rate t = t.soft_rate

let set_marginal t addr ~rate ~growth ~degrade_after =
  let index = check_address t addr in
  if rate < 0. || rate > 1. then invalid_arg "Drive.set_marginal: rate out of [0,1]"
  else if growth < 1.0 then invalid_arg "Drive.set_marginal: growth below 1"
  else if degrade_after < 1 then invalid_arg "Drive.set_marginal: degrade_after below 1"
  else
    Hashtbl.replace t.marginals index
      { m_rate = rate; m_growth = growth; m_degrade_after = degrade_after; m_failures = 0 }

let is_marginal t addr = Hashtbl.mem t.marginals (check_address t addr)

let soft_failures t addr =
  match Hashtbl.find_opt t.marginals (check_address t addr) with
  | None -> 0
  | Some m -> m.m_failures

let restore t =
  let seek_us =
    Geometry.seek_time_us t.geometry ~from_cylinder:t.current_cylinder
      ~to_cylinder:0
  in
  if seek_us > 0 then begin
    Sim_clock.advance_us t.clock seek_us;
    t.stats <-
      { t.stats with seeks = t.stats.seeks + 1; seek_us = t.stats.seek_us + seek_us };
    Obs.incr m_seeks;
    Obs.add m_seek_us seek_us;
    Obs.observe m_seek_distance t.current_cylinder
  end;
  Prof.charge_seek seek_us;
  Trace.charge_seek seek_us;
  t.current_cylinder <- 0;
  Obs.incr m_restores;
  Obs.event ~clock:t.clock ~fields:[ ("pack", Obs.I t.pack_id) ] "disk.restore"
