(** Fault injection.

    §3.5's scavenger exists because packs decay, programs crash mid-write
    and directories get scrambled. This module manufactures those
    misfortunes deterministically (all randomness comes from a caller-
    supplied [Random.State.t]) so the robustness experiments (E9) and the
    scavenger tests are reproducible. *)

val corrupt_part :
  Random.State.t -> Drive.t -> Disk_address.t -> Sector.part -> unit
(** Replace every word of the part with random junk. *)

val zero_part : Drive.t -> Disk_address.t -> Sector.part -> unit

val flip_word :
  Random.State.t -> Drive.t -> Disk_address.t -> Sector.part -> unit
(** Flip one random bit in one random word — a single soft error. *)

val make_bad : Drive.t -> Disk_address.t -> unit
(** The sector becomes permanently unreadable. *)

val make_value_unreadable : Drive.t -> Disk_address.t -> unit
(** The sector's data surface fails: value reads error, label operations
    and writes still work. The scavenger's value-verification pass finds
    such sectors and marks them bad in the label. *)

val set_soft_errors : Drive.t -> seed:int -> rate:float -> unit
(** Turn on the drive's transient-error mode: every read/check part
    access fails with probability [rate], deterministically in [seed]
    (see {!Drive.set_soft_errors}). {!Reliable.run} absorbs these. *)

val clear_soft_errors : Drive.t -> unit
(** Base rate back to zero (marginal sectors keep their own rates). *)

val make_marginal :
  ?rate:float ->
  ?growth:float ->
  ?degrade_after:int ->
  Drive.t ->
  Disk_address.t ->
  unit
(** A sector on its way out: value reads soft-fail at [rate] (default
    0.5), the rate multiplying by [growth] (default 1.25) on each
    failure, until [degrade_after] failures (default 16) turn it
    permanently bad. Label and header accesses stay clean (compare
    {!make_value_unreadable}), so the scavenger can still identify the
    page while its data decays. *)

val crash_after_writes : ?tear:Drive.tear -> Drive.t -> int -> unit
(** Arm {!Drive.set_crash_point}: [n] more writing operations complete,
    then the machine dies with {!Drive.Power_failure} — cleanly between
    sectors by default, or mid-transfer with [?tear], leaving the fatal
    sector torn and detectably unreadable. The crash-injection harness
    sweeps [n] across whole workloads. *)

val cancel_crash : Drive.t -> unit
(** Disarm a pending crash point (recovery runs on mains power). *)

val decay :
  Random.State.t -> Drive.t -> fraction:float -> Disk_address.t list
(** [decay rng drive ~fraction] corrupts the labels of roughly [fraction]
    of all sectors (each sector independently with that probability) and
    returns the victims. Raises [Invalid_argument] unless
    [0 <= fraction <= 1]. *)
