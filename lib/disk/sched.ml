module Word = Alto_machine.Word
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

(* Process-wide scheduler metrics; per-batch figures are visible to
   callers through [Drive.stats] deltas. *)
let m_batches = Obs.counter "disk.sched.batches"
let m_requests = Obs.counter "disk.sched.requests"
let m_cylinder_runs = Obs.counter "disk.sched.cylinder_runs"

type request = {
  addr : Disk_address.t;
  op : Drive.op;
  header : Word.t array option;
  label : Word.t array option;
  value : Word.t array option;
}

let request ?header ?label ?value addr op = { addr; op; header; label; value }

type outcome = { result : (unit, Drive.error) result; retries : int }

(* C-SCAN: visit cylinders in ascending order starting from wherever the
   heads are, wrapping past the last cylinder back to the lowest — every
   request set costs at most one pass over the pack. Within a cylinder,
   requests stream track by track in rotational order: a head switch is
   free, and a full track read this way never waits, because the next
   track's first sector follows the previous track's last one angularly.
   (Sorting by slot across heads instead would park a whole revolution
   at every duplicate slot on a dense cylinder.) The original index is
   the final key so duplicate addresses keep a deterministic order. *)
let schedule geometry ~start requests =
  let cylinders = geometry.Geometry.cylinders in
  let n = Array.length requests in
  let order =
    Array.init n (fun i ->
        let cylinder, head, sector = Disk_address.chs geometry requests.(i).addr in
        ((cylinder - start + cylinders) mod cylinders, head, sector, i))
  in
  Array.sort compare order;
  order

let run_batch ?policy ?on_done drive requests =
  let n = Array.length requests in
  let outcomes = Array.make n { result = Ok (); retries = 0 } in
  if n > 0 then begin
    Obs.incr m_batches;
    Obs.add m_requests n;
    Prof.span (Drive.clock drive) "disk.sched.batch" (fun () ->
        let order =
          schedule (Drive.geometry drive) ~start:(Drive.current_cylinder drive)
            requests
        in
        let previous_run = ref (-1) in
        Array.iter
          (fun (run, _, _, i) ->
            if run <> !previous_run then begin
              previous_run := run;
              Obs.incr m_cylinder_runs
            end;
            let r = requests.(i) in
            let result, retries =
              Reliable.run_counted ?policy drive r.addr r.op ?header:r.header
                ?label:r.label ?value:r.value ()
            in
            let outcome = { result; retries } in
            outcomes.(i) <- outcome;
            match on_done with None -> () | Some f -> f i outcome)
          order)
  end;
  outcomes
