module Word = Alto_machine.Word
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof
module Trace = Alto_obs.Trace

(* Process-wide scheduler metrics; per-batch figures are visible to
   callers through [Drive.stats] deltas. *)
let m_batches = Obs.counter "disk.sched.batches"
let m_requests = Obs.counter "disk.sched.requests"
let m_cylinder_runs = Obs.counter "disk.sched.cylinder_runs"
let m_sweeps = Obs.counter "disk.sched.sweeps"
let m_merged = Obs.counter "disk.sched.merged_batches"
let m_prorated = Obs.counter "disk.sched.prorated_seek_us"

type request = {
  addr : Disk_address.t;
  op : Drive.op;
  header : Word.t array option;
  label : Word.t array option;
  value : Word.t array option;
}

let request ?header ?label ?value addr op = { addr; op; header; label; value }

type outcome = { result : (unit, Drive.error) result; retries : int }

(* C-SCAN: visit cylinders in ascending order starting from wherever the
   heads are, wrapping past the last cylinder back to the lowest — every
   request set costs at most one pass over the pack. Within a cylinder,
   requests stream track by track in rotational order: a head switch is
   free, and a full track read this way never waits, because the next
   track's first sector follows the previous track's last one angularly.
   (Sorting by slot across heads instead would park a whole revolution
   at every duplicate slot on a dense cylinder.) The submission sequence
   number is the final key, so duplicate addresses complete in arrival
   order even when they came from different callers.

   This static order fixes which cylinder comes when; [sweep] then
   rotates each cylinder's sector order to start at the slot the heads
   will actually catch ([Drive.catch_slot]), which the static sort
   cannot know because it depends on when the sweep reaches that
   cylinder. *)
let schedule geometry ~start keyed =
  let cylinders = geometry.Geometry.cylinders in
  let n = Array.length keyed in
  let order =
    Array.init n (fun i ->
        let addr, seq = keyed.(i) in
        let cylinder, head, sector = Disk_address.chs geometry addr in
        ((cylinder - start + cylinders) mod cylinders, head, sector, seq, i))
  in
  Array.sort compare order;
  order

(* {2 The standing queue}

   One queue outlives many callers: concurrent activities each submit
   their batch and block; whoever drives the queue then runs a single
   elevator sweep over everything pending, so requests that arrived from
   different conversations share one pass over the pack. A synchronous
   caller ([run_batch]) is simply a batch that submits and immediately
   sweeps. *)

type waiter = {
  w_req : request;
  w_seq : int;
  w_batch : int;
  w_policy : Reliable.policy option;
  w_index : int;  (* position within the submitting batch *)
  w_notify : int -> outcome -> unit;
  w_ctx : Trace.context option;  (* the request this sector is for *)
}

type t = {
  drive : Drive.t;
  mutable pending : waiter list;  (* newest first *)
  mutable next_seq : int;
  mutable next_batch : int;
}

let create drive = { drive; pending = []; next_seq = 0; next_batch = 0 }
let drive t = t.drive
let queued t = List.length t.pending

let submit_batch ?policy ?ctx t requests ~on_done =
  let n = Array.length requests in
  if n > 0 then begin
    Obs.incr m_batches;
    Obs.add m_requests n;
    (* A batch submitted without an explicit context inherits whichever
       request the machine is working for right now — so the synchronous
       callers (File's auto-batch inside a conversation's step, the Bio
       fills it triggers) bill the conversation without knowing about
       tracing at all. *)
    let ctx = match ctx with Some _ as c -> c | None -> Trace.current () in
    let batch = t.next_batch in
    t.next_batch <- batch + 1;
    Array.iteri
      (fun i r ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        t.pending <-
          {
            w_req = r;
            w_seq = seq;
            w_batch = batch;
            w_policy = policy;
            w_index = i;
            w_notify = on_done;
            w_ctx = ctx;
          }
          :: t.pending)
      requests
  end

let sweep t =
  match t.pending with
  | [] -> 0
  | pending ->
      (* Snapshot-and-clear before touching the disk: a completion
         callback is free to submit more work (or even run a nested
         batch); whatever arrives during this sweep rides the next one. *)
      t.pending <- [];
      let waiters = Array.of_list (List.rev pending) in
      let n = Array.length waiters in
      Obs.incr m_sweeps;
      let batches =
        let seen = Hashtbl.create 8 in
        Array.iter (fun w -> Hashtbl.replace seen w.w_batch ()) waiters;
        Hashtbl.length seen
      in
      if batches > 1 then Obs.add m_merged (batches - 1);
      Prof.span (Drive.clock t.drive) "disk.sched.sweep" (fun () ->
          let geometry = Drive.geometry t.drive in
          let spt = geometry.Geometry.sectors_per_track in
          let order =
            schedule geometry
              ~start:(Drive.current_cylinder t.drive)
              (Array.map (fun w -> (w.w_req.addr, w.w_seq)) waiters)
          in
          let serve i =
            let w = waiters.(i) in
            (* The first serve after a park closes that trace's wait
               window; the drive's motion charges for this sector then
               flow to the trace the request belongs to. *)
            (match w.w_ctx with Some c -> Trace.served c | None -> ());
            Trace.with_current w.w_ctx (fun () ->
                let r = w.w_req in
                let result, retries =
                  Reliable.run_counted ?policy:w.w_policy t.drive r.addr r.op
                    ?header:r.header ?label:r.label ?value:r.value ()
                in
                w.w_notify w.w_index { result; retries })
          in
          (* Execute one cylinder run at a time. Just before committing
             to each cylinder we know exactly where the surface will be
             when the heads settle ([Drive.catch_slot]), so each track's
             requests are rotated to start at the first catchable slot
             and wrap — a full track costs one revolution from wherever
             the head lands, instead of parking for slot 0. The head
             order and the seq tiebreak are untouched, so duplicate
             addresses still complete in arrival order. *)
          let total = Array.length order in
          let pos = ref 0 in
          while !pos < total do
            let run, _, _, _, first = order.(!pos) in
            let stop = ref !pos in
            while
              !stop < total
              && (let r, _, _, _, _ = order.(!stop) in r = run)
            do
              incr stop
            done;
            Obs.incr m_cylinder_runs;
            let cylinder, _, _ =
              Disk_address.chs geometry waiters.(first).w_req.addr
            in
            let catch = Drive.catch_slot t.drive ~cylinder in
            (* The run's entry seek is shared motion: the heads travel
               here once for every request on this cylinder. The drive
               will charge the whole move to whichever request is served
               first, so predict it with the drive's own arithmetic and
               pro-rate it evenly across the run after serving — per
               request ⌊S/k⌋, the remainder to the earliest-served — so
               per-request totals still sum exactly to the drive's
               counters. Seeks a retry ladder adds mid-run (restore and
               return) stay on the request that needed them. *)
            let entry_seek =
              Geometry.seek_time_us geometry
                ~from_cylinder:(Drive.current_cylinder t.drive)
                ~to_cylinder:cylinder
            in
            let slice = Array.sub order !pos (!stop - !pos) in
            Array.sort
              (fun (_, h1, s1, q1, _) (_, h2, s2, q2, _) ->
                compare
                  (h1, (s1 - catch + spt) mod spt, q1)
                  (h2, (s2 - catch + spt) mod spt, q2))
              slice;
            Array.iter (fun (_, _, _, _, i) -> serve i) slice;
            let k = Array.length slice in
            if entry_seek > 0 && k > 1 then begin
              let payer =
                let _, _, _, _, i = slice.(0) in
                waiters.(i).w_ctx
              in
              let share = entry_seek / k and rem = entry_seek mod k in
              Array.iteri
                (fun j (_, _, _, _, i) ->
                  if j > 0 then begin
                    let amount = share + if j < rem then 1 else 0 in
                    Trace.rebill_seek ~from_:payer ~to_:waiters.(i).w_ctx amount;
                    Obs.add m_prorated amount
                  end)
                slice
            end;
            pos := !stop
          done);
      n

(* {2 The one-shot compatibility path}

   Every pre-existing caller — the scavenger's passes, the compactor,
   world transfers, [File]'s auto-batch — goes through here: a private
   standing queue that lives for exactly one batch. The elevator order,
   the retry ladder and the metrics are the standing queue's; only the
   merging opportunity is absent, because a synchronous caller cannot
   wait for company. *)

let run_batch ?policy ?on_done drive requests =
  let n = Array.length requests in
  let outcomes = Array.make n { result = Ok (); retries = 0 } in
  if n > 0 then begin
    let q = create drive in
    let remaining = ref n in
    submit_batch ?policy q requests ~on_done:(fun i outcome ->
        outcomes.(i) <- outcome;
        (match on_done with None -> () | Some f -> f i outcome);
        decr remaining);
    while !remaining > 0 do
      if sweep q = 0 then
        (* Submitted work can only be waiting in this queue; an empty
           sweep with completions outstanding is a scheduler bug. *)
        invalid_arg "Sched.run_batch: outstanding requests vanished"
    done
  end;
  outcomes
