(** Cylinder-batched transfers: an elevator queue over {!Reliable}.

    A caller that knows a whole set of sectors it wants — the scavenger
    sweeping the pack, the compactor freeing evacuated sectors, a level-4
    world transfer streaming 257 pages — gains nothing from issuing them
    in logical order: every jump between cylinders is a seek, and
    [disk.seeks] shows those passes are seek-dominated. This module
    accepts the whole set at once, orders it with a C-SCAN elevator pass
    (cylinders ascending from the current head position, wrapping once),
    streams each cylinder track by track in rotational order, and returns
    the outcomes in the {e caller's} order. Consecutive sectors on one
    cylinder cost one seek instead of N.

    Batching changes only the order of operations, never their content;
    each request still goes through {!Reliable.run_counted}, so the retry
    ladder, quarantine evidence and every [disk.*] counter behave exactly
    as they do on the naive path. *)

module Word = Alto_machine.Word

type request

val request :
  ?header:Word.t array ->
  ?label:Word.t array ->
  ?value:Word.t array ->
  Disk_address.t ->
  Drive.op ->
  request
(** One sector operation with its buffers — the same contract as
    {!Drive.run}, reified. The address must not be nil. *)

type outcome = {
  result : (unit, Drive.error) result;
  retries : int;  (** Retries {!Reliable} spent on this request. *)
}

val run_batch :
  ?policy:Reliable.policy ->
  ?on_done:(int -> outcome -> unit) ->
  Drive.t ->
  request array ->
  outcome array
(** Issue every request in one elevator pass. [outcomes.(i)] belongs to
    [requests.(i)] regardless of the order the disk saw them in.

    [on_done i outcome] fires immediately after request [i] completes,
    {e before} the next request is issued — the window in which a caller
    sharing one buffer across requests must consume it. Requests whose
    buffers are distinct can ignore the callback and read the outcome
    array afterwards.

    Raises [Invalid_argument] (via {!Drive.run}) on nil or out-of-range
    addresses, missing buffers, or write-continuation violations. *)
