(** The standing elevator queue: cylinder-batched transfers over
    {!Reliable}.

    A caller that knows a whole set of sectors it wants — the scavenger
    sweeping the pack, the compactor freeing evacuated sectors, a level-4
    world transfer streaming 257 pages — gains nothing from issuing them
    in logical order: every jump between cylinders is a seek, and
    [disk.seeks] shows those passes are seek-dominated. This module
    accepts whole request sets, orders each sweep with a C-SCAN elevator
    pass (cylinders ascending from the current head position, wrapping
    once), streams each cylinder track by track in rotational order, and
    completes every request through its caller's callback.

    The queue {e stands}: it outlives any one caller, so concurrent
    activities (the file server's client conversations, §4) each
    {!submit_batch} their requests and block, and a single {!sweep}
    then serves everything pending in one pass over the pack — the
    merging that turns N conversations' seeks into one elevator's.
    Requests for the same sector complete in arrival order (the global
    submission sequence is the sort's final key), so interleaving
    changes only the motion of the heads, never the data.

    {!run_batch} is the synchronous face kept for one-shot callers: a
    private queue that submits, sweeps once, and returns the outcomes in
    the caller's order. Batching changes only the order of operations,
    never their content; each request still goes through
    {!Reliable.run_counted}, so the retry ladder, quarantine evidence
    and every [disk.*] counter behave exactly as they do on the naive
    path. *)

module Word = Alto_machine.Word
module Trace = Alto_obs.Trace

type request

val request :
  ?header:Word.t array ->
  ?label:Word.t array ->
  ?value:Word.t array ->
  Disk_address.t ->
  Drive.op ->
  request
(** One sector operation with its buffers — the same contract as
    {!Drive.run}, reified. The address must not be nil. *)

type outcome = {
  result : (unit, Drive.error) result;
  retries : int;  (** Retries {!Reliable} spent on this request. *)
}

(** {2 The standing queue} *)

type t

val create : Drive.t -> t
(** An empty standing queue for this drive. Queues are cheap; the file
    server keeps one for the life of the volume, [run_batch] makes one
    per call. *)

val drive : t -> Drive.t

val submit_batch :
  ?policy:Reliable.policy ->
  ?ctx:Trace.context ->
  t ->
  request array ->
  on_done:(int -> outcome -> unit) ->
  unit
(** Enqueue a batch. Nothing touches the disk until a {!sweep};
    [on_done i outcome] fires during some later sweep, once per request,
    with [i] the request's index {e within this batch}. An empty batch
    is a no-op.

    [ctx] is the request trace this batch's disk time belongs to;
    omitted, the batch inherits {!Trace.current} at submission — so
    synchronous callers running inside a traced conversation bill it
    without knowing about tracing. Each waiter is served under its
    context, and each cylinder run's shared entry seek is pro-rated
    evenly across the run's requests (⌊S/k⌋ each, remainder to the
    earliest-served; counted in [disk.sched.prorated_seek_us]), so
    per-request totals sum exactly to the drive's motion counters. *)

val queued : t -> int
(** Requests submitted and not yet swept. *)

val sweep : t -> int
(** Serve everything pending in one C-SCAN elevator pass, firing each
    waiter's [on_done] as its request completes (before the next request
    is issued — the window in which a caller sharing one buffer across
    requests must consume it). Requests submitted {e during} the sweep —
    by completion callbacks, including nested {!run_batch} calls — wait
    for the next sweep. Returns the number of requests served; 0 means
    the queue was empty.

    Raises [Invalid_argument] (via {!Drive.run}) on nil or out-of-range
    addresses, missing buffers, or write-continuation violations. *)

(** {2 The one-shot path} *)

val run_batch :
  ?policy:Reliable.policy ->
  ?on_done:(int -> outcome -> unit) ->
  Drive.t ->
  request array ->
  outcome array
(** Issue every request in one elevator pass over a private standing
    queue. [outcomes.(i)] belongs to [requests.(i)] regardless of the
    order the disk saw them in. [on_done i outcome] fires immediately
    after request [i] completes, {e before} the next request is issued.

    Raises [Invalid_argument] as {!sweep} does. *)
