module Word = Alto_machine.Word

let random_words rng n =
  Array.init n (fun _ -> Word.of_int (Random.State.int rng 0x10000))

let corrupt_part rng drive addr part =
  Drive.poke drive addr part (random_words rng (Sector.part_size part))

let zero_part drive addr part =
  Drive.poke drive addr part (Array.make (Sector.part_size part) Word.zero)

let flip_word rng drive addr part =
  let sector = Drive.peek drive addr in
  let words = Sector.part_of sector part in
  let i = Random.State.int rng (Array.length words) in
  let bit = Random.State.int rng Word.bits in
  words.(i) <- Word.logxor words.(i) (Word.shift_left Word.one bit);
  Drive.poke drive addr part words

let make_bad drive addr = Drive.set_bad drive addr true

let make_value_unreadable drive addr = Drive.set_value_unreadable drive addr true

let set_soft_errors drive ~seed ~rate = Drive.set_soft_errors drive ~seed ~rate

let clear_soft_errors drive = Drive.set_soft_errors drive ~seed:0 ~rate:0.

let make_marginal ?(rate = 0.5) ?(growth = 1.25) ?(degrade_after = 16) drive addr =
  Drive.set_marginal drive addr ~rate ~growth ~degrade_after

let crash_after_writes ?tear drive n = Drive.set_crash_point drive ?tear ~after_writes:n ()

let cancel_crash drive = Drive.clear_crash_point drive

let decay rng drive ~fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Fault.decay: fraction out of [0,1]"
  else begin
    let victims = ref [] in
    for i = Drive.sector_count drive - 1 downto 0 do
      if Random.State.float rng 1.0 < fraction then begin
        let addr = Disk_address.of_index i in
        corrupt_part rng drive addr Sector.Label;
        victims := addr :: !victims
      end
    done;
    !victims
  end
