(** Reliable transfers: bounded retry over {!Drive.run}.

    §1 promises "recovery from crashes and resistance to misuse"; the
    real Alto OS delivered the disk half of that promise by retrying
    transient Diablo errors before declaring them hard. This layer is
    that discipline, made explicit as an escalation ladder:

    + run the operation;
    + on a {!Drive.Transient} error, retry in place (the sector comes
      around again one revolution later);
    + after [restore_after] failed retries, {!Drive.restore} — seek back
      to cylinder 0 to recalibrate — before each further attempt;
    + after [max_retries] retries, give up and report the last error:
      it is now {e hard}, and escalation belongs to the caller (the
      hint ladder, or the scavenger's quarantine-and-copy-out).

    Deterministic errors ({!Drive.Bad_sector}, {!Drive.Check_mismatch})
    are never retried: a retry would cost a revolution and change
    nothing. Retrying a transiently failed operation is always safe —
    the drive guarantees no data moved on the failing attempt, completed
    check parts re-match, and completed writes are idempotent.

    Every retry is instrumented: [disk.retries], [disk.retry_recovered],
    [disk.retry_exhausted] counters and the [disk.retry_latency_us]
    histogram (simulated time from first failure to final outcome). *)

module Word = Alto_machine.Word

type policy = { max_retries : int; restore_after : int }

val default_policy : policy
(** 3 retries, restore before the 3rd — the everyday file-system
    policy. *)

val salvage_policy : policy
(** 12 retries, restore from the 4th on — the scavenger's
    last-chance policy for copying pages off marginal sectors. *)

val run :
  ?policy:policy ->
  Drive.t ->
  Disk_address.t ->
  Drive.op ->
  ?header:Word.t array ->
  ?label:Word.t array ->
  ?value:Word.t array ->
  unit ->
  (unit, Drive.error) result
(** Exactly {!Drive.run}'s contract, with transient errors absorbed up
    to the policy's budget. An [Error (Transient _)] from this layer
    means the budget ran out — treat it as hard. *)

val run_counted :
  ?policy:policy ->
  Drive.t ->
  Disk_address.t ->
  Drive.op ->
  ?header:Word.t array ->
  ?label:Word.t array ->
  ?value:Word.t array ->
  unit ->
  (unit, Drive.error) result * int
(** {!run}, also reporting how many retries this operation consumed —
    the scavenger's evidence that a sector is marginal. *)
