(** A simulated disk drive with the Alto controller's transfer semantics.

    §3.3: "A single disk operation can perform read, check or write
    actions independently on each of these parts, with the restriction
    that once a write is begun, it must continue through the rest of the
    sector. A check action compares data on the disk with corresponding
    data taken from memory, word by word, and aborts the entire operation
    if they don't match. If a memory word is 0, however, it is replaced by
    the corresponding disk word, so that a check action is a simple kind
    of pattern match."

    Every operation is charged simulated time: a seek if the cylinder
    changes, a rotational wait until the target sector comes under the
    head, and one sector's transfer time. The paper's one-revolution cost
    for allocate/free falls out of this model: two successive operations
    on the same sector must wait almost a full revolution between them,
    while an operation on the next sector of the same track starts
    immediately. *)

module Word = Alto_machine.Word

type t

type action = Read | Check | Write

type op = {
  header : action option;
  label : action option;
  value : action option;
}
(** What to do to each part, processed in header, label, value order.
    [None] means the part is skipped. *)

val op_none : op
(** All parts skipped; combine with record update syntax. *)

type error =
  | Bad_sector  (** The sector is permanently unreadable. *)
  | Check_mismatch of {
      part : Sector.part;
      offset : int;
      memory : Word.t;
      disk : Word.t;
    }
      (** A check action found a non-wildcard memory word differing from
          the disk. Parts after the failing one were not performed. *)
  | Transient of Sector.part
      (** A soft error: the controller's checksum caught a misread of
          this part before any data moved. The buffers are untouched, no
          earlier part was undone, and a retry of the same operation may
          succeed — {!Reliable.run} is the layer that performs those
          retries. Only read and check actions can fail this way. *)

val pp_error : Format.formatter -> error -> unit

type stats = {
  operations : int;
  seeks : int;
  seek_us : int;
  rotational_wait_us : int;
  transfer_us : int;
  words_read : int;
  words_written : int;
  check_failures : int;
  soft_errors : int;
}

val create : ?clock:Alto_machine.Sim_clock.t -> pack_id:int -> Geometry.t -> t
(** A formatted pack: every sector's header holds the pack id and its own
    disk address; labels and values are zeroed. Raises [Invalid_argument]
    if the geometry fails {!Geometry.validate}. *)

val geometry : t -> Geometry.t
val clock : t -> Alto_machine.Sim_clock.t
val pack_id : t -> int
val sector_count : t -> int

val run :
  t ->
  Disk_address.t ->
  op ->
  ?header:Word.t array ->
  ?label:Word.t array ->
  ?value:Word.t array ->
  unit ->
  (unit, error) result
(** Execute one disk operation. Each part with an action must be given a
    buffer of exactly that part's size: [Read] fills the buffer from the
    disk, [Check] pattern-matches it against the disk (mutating wildcard
    zeros to the disk's words), [Write] stores it to the disk.

    Raises [Invalid_argument] — these are programming errors, not disk
    errors — if the address is nil or out of range, a buffer is missing
    or mis-sized, or the operation violates the write-continuation rule
    (a write on one part requires writes on all later parts). *)

val stats : t -> stats
val reset_stats : t -> unit

val current_cylinder : t -> int
(** Where the heads are right now — the anchor from which {!Sched}
    starts its elevator pass. *)

val catch_slot : t -> cylinder:int -> int
(** Rotational position sensing. The sector slot (0 ..
    [sectors_per_track - 1]) that will be the first one catchable after
    seeking from the current cylinder to [cylinder]: the controller
    watches sector marks pass under the heads, so a scheduler can order
    a cylinder's requests to start where the surface will actually be
    instead of parking up to a full revolution waiting for slot 0.
    Purely observational — charges no time and moves nothing. *)

val label_generation : t -> Disk_address.t -> int
(** A per-sector counter that advances whenever the sector's label may
    have changed underneath a cached copy: any label write (in-band
    {!run} or out-of-band {!poke}), the sector being marked bad, a
    marginal sector degrading, and every transient trip (retry evidence —
    if the surface just misread, cached knowledge about it is suspect).
    {!Label_cache} entries store the generation at verify time and are
    dead the moment it moves. Raises [Invalid_argument] on an address
    beyond the pack. *)

val bump_label_generation : t -> Disk_address.t -> unit
(** Advance the sector's generation by hand. The in-band bumps cover
    every way the {e drive} can know a label changed; a layer that moves
    a page between sectors knows more — both ends of the move must shed
    any cached label even if some individual write was absorbed or
    elided — and declares it here. *)

val restore : t -> unit
(** Recalibrate: seek back to cylinder 0, charging the seek time. The
    retry layer escalates to this when immediate retries keep failing —
    the real controller's cure for a head that has drifted off track. *)

(** {2 The transient-fault model}

    Soft errors are the everyday failures the paper's recovery discipline
    exists for: a read that fails once and succeeds on retry. The model
    has two dials — a pack-wide base rate, and per-sector {e marginal}
    profiles whose rate climbs with every failure until the sector
    degrades into a permanent {!Bad_sector}. All draws come from a
    seeded, version-stable PRNG inside the drive, so a workload replayed
    with the same seed sees the identical error sequence on any OCaml
    version. *)

val set_soft_errors : t -> seed:int -> rate:float -> unit
(** Reseed the drive's soft-error stream and set the base probability
    that any single read/check part access fails transiently. [rate]
    0.0 (the default) disables base soft errors without disturbing
    marginal sectors. Raises [Invalid_argument] unless [0 <= rate <= 1]. *)

val soft_error_rate : t -> float

val set_marginal :
  t -> Disk_address.t -> rate:float -> growth:float -> degrade_after:int -> unit
(** Declare one sector marginal: its data surface is wearing out, so
    {e value} reads fail with its own [rate] (added to the base rate)
    while header and label accesses see only the base rate; each failure
    multiplies the rate by [growth] (≥ 1), and after [degrade_after]
    failures the sector turns permanently bad. *)

val is_marginal : t -> Disk_address.t -> bool

val soft_failures : t -> Disk_address.t -> int
(** How many soft errors this sector's marginal profile has recorded;
    0 for non-marginal sectors. *)

exception Power_failure
(** Raised by {!run} when an injected power budget runs out — the
    machine stops mid-workload, leaving the pack exactly as the
    completed operations left it. The crash-consistency tests sweep the
    failure point across whole workloads. *)

val set_power_budget : t -> int option -> unit
(** [set_power_budget t (Some n)] lets [n] more operations complete and
    makes the one after raise {!Power_failure}; [None] (the default)
    removes the limit. Out-of-band access ({!peek}/{!poke}) is not
    limited — the microscope works even on a dead machine. *)

(** {2 The crash-point model}

    {!set_power_budget} counts every operation, reads included, and
    assumes each completed sector is atomic. The crash point is the
    sharper instrument the crash-injection harness enumerates with: it
    counts only operations that {e write}, and can stop the fatal write
    partway through one part — the torn sector a real power failure can
    leave, which §3.3's label discipline never promises against at the
    sub-sector level. The controller models a per-part checksum: a torn
    part reads back as {!Bad_sector} until a full rewrite of that part
    restores it, so recovery can always {e detect} the tear even though
    the data is gone. *)

type tear =
  | Torn_label
      (** The fatal operation's {e first} written part stops halfway:
          for a label+value write, the label is torn and the value never
          started. *)
  | Torn_value
      (** The fatal operation's {e last} written part stops halfway:
          for a label+value write, the label is committed and the value
          is half-transferred. *)

val set_crash_point : t -> ?tear:tear -> after_writes:int -> unit -> unit
(** Arm the countdown: [after_writes] more writing operations complete
    normally and the one after kills the machine with {!Power_failure}.
    Without [tear] the fatal operation never starts (the cut fell
    between sectors); with it, the operation's pre-write actions (the
    guarding label check) still run and then the chosen part is left
    torn — a prefix of the words transferred (seeded, version-stable
    cut point) and the part unreadable. Raises [Invalid_argument] on a
    negative countdown. *)

val clear_crash_point : t -> unit

val crash_pending : t -> bool
(** An armed crash point that has not fired yet — how the harness tells
    a workload that outran its enumerated points from one that died. *)

val write_ops : t -> int
(** Total operations with at least one write action since the drive was
    created — the coordinate system crash points are enumerated in. *)

val is_torn : t -> Disk_address.t -> bool
(** Some part of this sector was left mid-transfer by a torn crash and
    has not been rewritten since. *)

val clear_torn : t -> Disk_address.t -> unit
(** Out-of-band repair of the torn state (tests only); production paths
    heal a torn part by rewriting it. *)

(** {2 Out-of-band access}

    These bypass the controller and the clock. They exist for tests,
    fault injection and the experiment harness — the moral equivalent of
    pulling the pack out of the drive and putting it under a microscope.
    Production code paths must use {!run}. *)

val peek : t -> Disk_address.t -> Sector.t
(** A copy of the sector's current contents. *)

val poke : t -> Disk_address.t -> Sector.part -> Word.t array -> unit
(** Overwrite one part directly. Counts as out-of-band staleness
    evidence whatever the part: the sector's label generation is bumped
    so every in-core copy (cached label, buffered track sector) dies
    rather than mask what the "physics" changed. *)

val set_bad : t -> Disk_address.t -> bool -> unit
(** Mark or unmark a sector as permanently bad. *)

val is_bad : t -> Disk_address.t -> bool

val set_value_unreadable : t -> Disk_address.t -> bool -> unit
(** A subtler media failure: the data surface is damaged, so reading or
    checking the value part fails with {!Bad_sector}, but the label (and
    writes, which have no read-back) still work — the failure mode
    behind §3.5's "permanently bad pages are marked in the label with a
    special value so that they will never be used again". Toggling the
    flag bumps the sector's label generation — the surface died (or
    healed) under whatever was cached. *)

val is_value_unreadable : t -> Disk_address.t -> bool
