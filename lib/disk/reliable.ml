module Word = Alto_machine.Word
module Sim_clock = Alto_machine.Sim_clock
module Obs = Alto_obs.Obs
module Prof = Alto_obs.Prof

let m_retries = Obs.counter "disk.retries"
let m_recovered = Obs.counter "disk.retry_recovered"
let m_retry_exhausted = Obs.counter "disk.retry_exhausted"
let h_retry_latency = Obs.histogram "disk.retry_latency_us"

type policy = { max_retries : int; restore_after : int }

let default_policy = { max_retries = 3; restore_after = 2 }
let salvage_policy = { max_retries = 12; restore_after = 3 }

let validate_policy p =
  if p.max_retries < 0 then invalid_arg "Reliable: negative max_retries"
  else if p.restore_after < 1 then invalid_arg "Reliable: restore_after below 1"

let run_counted ?(policy = default_policy) drive addr op ?header ?label ?value () =
  validate_policy policy;
  let clock = Drive.clock drive in
  let attempt () = Drive.run drive addr op ?header ?label ?value () in
  match attempt () with
  | Ok () -> (Ok (), 0)
  | Error (Drive.Bad_sector | Drive.Check_mismatch _) as hard ->
      (* Deterministic failures: a bad surface or a label that genuinely
         disagrees. Retrying would cost a revolution and change
         nothing — escalation belongs to the caller (hint ladder,
         scavenger). *)
      (hard, 0)
  | Error (Drive.Transient _) as first ->
      let t0 = Sim_clock.now_us clock in
      let finish result retries =
        Obs.observe h_retry_latency (Sim_clock.now_us clock - t0);
        (result, retries)
      in
      let rec retry r last =
        if r > policy.max_retries then begin
          Obs.incr m_retry_exhausted;
          Obs.event ~clock
            ~fields:
              [
                ("addr", Obs.I (Disk_address.to_index addr));
                ("retries", Obs.I policy.max_retries);
              ]
            "disk.retry_exhausted";
          finish last policy.max_retries
        end
        else begin
          (* The escalation ladder: immediate re-reads first; once those
             have failed [restore_after] times, recalibrate the heads
             before every further attempt. *)
          if r > policy.restore_after then Drive.restore drive;
          Obs.incr m_retries;
          match attempt () with
          | Ok () ->
              Obs.incr m_recovered;
              Obs.event ~clock
                ~fields:
                  [
                    ("addr", Obs.I (Disk_address.to_index addr));
                    ("retries", Obs.I r);
                  ]
                "disk.retry_recovered";
              finish (Ok ()) r
          | Error (Drive.Transient _) as e -> retry (r + 1) e
          | Error (Drive.Bad_sector | Drive.Check_mismatch _) as hard ->
              (* The fault hardened mid-retry (a marginal sector just
                 degraded) or the transient was masking a real mismatch:
                 report the truth, retries are pointless now. *)
              finish hard r
        end
      in
      (* Everything past the first failed attempt is the cost of the
         fault, not of the operation: the profiler files its motion
         (restores included) under the retry component. *)
      Prof.with_retry (fun () -> retry 1 first)

let run ?policy drive addr op ?header ?label ?value () =
  fst (run_counted ?policy drive addr op ?header ?label ?value ())
