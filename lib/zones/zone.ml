module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Obs = Alto_obs.Obs

let m_allocates = Obs.counter "zone.allocates"
let m_releases = Obs.counter "zone.releases"
let m_splits = Obs.counter "zone.splits"
let m_coalesces = Obs.counter "zone.coalesces"
let m_out_of_space = Obs.counter "zone.out_of_space"
let h_request_words = Obs.histogram "zone.request_words"

(* Occupancy observed after every allocate; the histogram's [max] is the
   peak number of simultaneously live blocks across all zones. *)
let h_live_blocks = Obs.histogram "zone.live_blocks"

exception Out_of_space of { zone : string; requested : int }
exception Corrupt of string

(* In-memory layout. Descriptor at [base]:
     base+0  magic
     base+1  region length in words
     base+2  free-list head (address; 0 = nil)
     base+3  live block count
   Every block starts with one header word holding its total size
   (header included). A free block's second word is the next-free
   pointer; the free list is kept sorted by address so that coalescing
   on release is a simple neighbour check. *)

let magic = 0x5A4F (* "ZO" *)
let overhead_words = 4
let block_overhead_words = 1
let min_block = 2
let min_region_words = overhead_words + min_block
let nil = 0

type t = { name : string; memory : Memory.t; base : int }

let rd z a = Word.to_int (Memory.read z.memory a)
let wr z a v = Memory.write z.memory a (Word.of_int_exn v)

let region_len z = rd z (z.base + 1)
let head z = rd z (z.base + 2)
let set_head z p = wr z (z.base + 2) p
let live_count z = rd z (z.base + 3)
let set_live_count z n = wr z (z.base + 3) n
let region_end z = z.base + region_len z

let corrupt z what = raise (Corrupt (Printf.sprintf "zone %s: %s" z.name what))

let format ?(name = "zone") memory ~pos ~len =
  if pos < 1 || len > 0xffff || pos + len > Memory.size then
    invalid_arg "Zone.format: region outside memory (pos must be >= 1)"
  else if len < min_region_words then invalid_arg "Zone.format: region too small"
  else begin
    let z = { name; memory; base = pos } in
    wr z pos magic;
    wr z (pos + 1) len;
    let first = pos + overhead_words in
    wr z (pos + 2) first;
    wr z (pos + 3) 0;
    wr z first (len - overhead_words);
    wr z (first + 1) nil;
    z
  end

let attach ?(name = "zone") memory ~pos =
  let z = { name; memory; base = pos } in
  if pos < 1 || pos >= Memory.size then corrupt z "base address outside memory";
  if rd z pos <> magic then corrupt z "no zone descriptor at base";
  let len = region_len z in
  if len < min_region_words || pos + len > Memory.size then corrupt z "bad region length";
  z

let base z = z.base
let name z = z.name

let block_end z a = a + rd z a

let validate_free_block z a =
  if a < z.base + overhead_words || a + min_block > region_end z then
    corrupt z "free-list pointer outside region";
  if block_end z a > region_end z then corrupt z "free block overruns region"

let allocate z n =
  if n < 1 then invalid_arg "Zone.allocate: size must be >= 1";
  let need = n + block_overhead_words in
  let rec search prev cur =
    if cur = nil then begin
      Obs.incr m_out_of_space;
      Obs.event
        ~fields:[ ("zone", Obs.S z.name); ("requested", Obs.I n) ]
        "zone.out_of_space";
      raise (Out_of_space { zone = z.name; requested = n })
    end
    else begin
      validate_free_block z cur;
      let size = rd z cur in
      let next = rd z (cur + 1) in
      if size >= need then begin
        let link p =
          if prev = nil then set_head z p else wr z (prev + 1) p
        in
        if size - need >= min_block then begin
          (* Split: keep the tail as a free block. *)
          let rest = cur + need in
          wr z rest (size - need);
          wr z (rest + 1) next;
          wr z cur need;
          link rest;
          Obs.incr m_splits
        end
        else link next;
        set_live_count z (live_count z + 1);
        Obs.incr m_allocates;
        Obs.observe h_request_words n;
        Obs.observe h_live_blocks (live_count z);
        cur + block_overhead_words
      end
      else search cur next
    end
  in
  search nil (head z)

let validate_live_block z user_addr =
  let a = user_addr - block_overhead_words in
  if a < z.base + overhead_words || a >= region_end z then
    corrupt z "release of address outside region";
  let size = rd z a in
  if size < min_block || a + size > region_end z then
    corrupt z "release of address that is not a block";
  a

let block_size z user_addr =
  let a = validate_live_block z user_addr in
  rd z a - block_overhead_words

let release z user_addr =
  let a = validate_live_block z user_addr in
  let size = rd z a in
  (* Find the free-list position keeping it address-sorted. *)
  let rec find prev cur =
    if cur = nil || cur > a then (prev, cur) else find cur (rd z (cur + 1))
  in
  let prev, next = find nil (head z) in
  if (prev <> nil && block_end z prev > a) || (next <> nil && a + size > next) then
    corrupt z "release of a block overlapping the free list (double free?)";
  (* Insert, then coalesce with next and previous neighbours. *)
  wr z (a + 1) next;
  if prev = nil then set_head z a else wr z (prev + 1) a;
  if next <> nil && block_end z a = next then begin
    wr z a (size + rd z next);
    wr z (a + 1) (rd z (next + 1));
    Obs.incr m_coalesces
  end;
  if prev <> nil && block_end z prev = a then begin
    wr z prev (rd z prev + rd z a);
    wr z (prev + 1) (rd z (a + 1));
    Obs.incr m_coalesces
  end;
  if live_count z = 0 then corrupt z "release with no live blocks"
  else begin
    set_live_count z (live_count z - 1);
    Obs.incr m_releases
  end

type stats = {
  region_words : int;
  free_words : int;
  live_blocks : int;
  free_blocks : int;
  largest_free : int;
}

let fold_free z f init =
  let rec walk acc cur guard =
    if cur = nil then acc
    else if guard = 0 then corrupt z "free list does not terminate"
    else begin
      validate_free_block z cur;
      walk (f acc cur (rd z cur)) (rd z (cur + 1)) (guard - 1)
    end
  in
  walk init (head z) (Memory.size / min_block)

let stats z =
  let free_words, free_blocks, largest_free =
    fold_free z
      (fun (words, blocks, largest) _addr size ->
        (words + size, blocks + 1, max largest size))
      (0, 0, 0)
  in
  {
    region_words = region_len z;
    free_words = (if free_words = 0 then 0 else free_words - block_overhead_words * free_blocks);
    live_blocks = live_count z;
    free_blocks;
    largest_free = (if largest_free = 0 then 0 else largest_free - block_overhead_words);
  }

let check z =
  if rd z z.base <> magic then corrupt z "descriptor magic destroyed";
  let last =
    fold_free z
      (fun last addr size ->
        if addr <= last then corrupt z "free list not address-sorted";
        if size < min_block then corrupt z "undersized free block";
        block_end z addr - 1)
      0
  in
  ignore last

type obj = { obj_allocate : int -> int; obj_release : int -> unit }

let obj z = { obj_allocate = allocate z; obj_release = release z }
