(** The observability layer.

    One process-wide registry of named metrics, a bounded event trace,
    and span timers driven by {!Alto_machine.Sim_clock} — the substrate
    behind every performance claim this repository makes. The hot layers
    (disk, file system, scavenger, zones, world swap, loader) record
    into it unconditionally; recording is a few machine instructions, so
    nothing needs a "metrics on/off" switch.

    Two metric kinds exist:

    - {b counters} — monotonically increasing integers ("disk.seeks").
      {!reset} rewinds them to zero; nothing else decreases one.
    - {b histograms} — streams of observed integer values
      ("scavenger.duration_us"), summarized as count/sum/min/max/mean.
      Peaks (e.g. zone occupancy) are read off a histogram's [max].

    Names are dotted paths, ["<subsystem>.<metric>"], lower-case. A name
    registers on first use and keeps its kind forever; registering the
    same name with the other kind raises [Invalid_argument].

    The event trace is a ring buffer holding the most recent
    {!trace_capacity} events; {!add_sink} taps the stream as it flows
    (for live debugging or custom aggregation) regardless of ring size.

    Everything here is deliberately global: the simulation is a
    single-user machine, and the registry plays the role of the
    machine's one pocket of instrumentation RAM. Tests that need
    isolation call {!reset} first. *)

module Sim_clock = Alto_machine.Sim_clock

(** {1 Counters} *)

type counter

val counter : string -> counter
(** The counter registered under this name, creating it at zero on first
    use. Raises [Invalid_argument] if the name is already a histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]; counters are monotonic. *)

val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Histograms} *)

type histogram

type summary = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0]. *)
  max : int;  (** 0 when [count = 0]. *)
  mean : float;  (** 0.0 when [count = 0]. *)
  p50 : int;  (** See {!percentile}. 0 when [count = 0]. *)
  p90 : int;
  p99 : int;
}

val histogram : string -> histogram
(** The histogram registered under this name, creating it empty on first
    use. Raises [Invalid_argument] if the name is already a counter. *)

val observe : histogram -> int -> unit
val summary : histogram -> summary
val histogram_name : histogram -> string

val percentile : histogram -> float -> int
(** [percentile h p] with [p] in [[0, 1]]: the smallest recorded bucket
    whose cumulative count reaches [ceil (p * count)], clamped into
    [[min, max]]. Values are log-bucketed with 3 mantissa bits: exact
    below 16, within 12.5% (one bucket) of exact above. 0 when the
    histogram is empty. *)

(** {1 Spans}

    A span charges the elapsed {e simulated} time of a computation to a
    histogram, and brackets it with [<name>.begin] / [<name>.end] trace
    events. The wrapped exception-free result is returned unchanged; if
    the computation raises, the span is still closed and observed. *)

val time : Sim_clock.t -> string -> (unit -> 'a) -> 'a
(** [time clock name f] runs [f ()] and observes the simulated
    microseconds it took into the histogram [name]. The computation also
    runs inside a {!Prof.span} of the same name, so every timed site
    shows up in the causal span tree for free. *)

(** {1 Event trace} *)

type field_value = I of int | S of string | B of bool

type event = {
  seq : int;  (** Global sequence number, increasing from 0. *)
  ts_us : int;  (** Simulated time, or 0 when no clock was supplied. *)
  name : string;
  fields : (string * field_value) list;
}

val event : ?clock:Sim_clock.t -> ?fields:(string * field_value) list -> string -> unit
(** Record one event: append to the ring (evicting the oldest when
    full) and feed every sink. *)

val trace : unit -> event list
(** The retained events, oldest first. *)

val trace_capacity : unit -> int

val set_trace_capacity : int -> unit
(** Resize the ring, keeping the newest events that fit. The default
    capacity is 1024. Raises [Invalid_argument] when the capacity is
    not positive. *)

val clear_trace : unit -> unit

type sink_id

val add_sink : (event -> unit) -> sink_id
(** Sinks see every event at record time, including events the ring has
    since evicted. A sink that raises is removed. *)

val remove_sink : sink_id -> unit

(** {1 The registry} *)

type metric = Counter of int | Histogram of summary

val snapshot : unit -> (string * metric) list
(** Every registered metric, sorted by name. *)

val find : string -> metric option

val reset : unit -> unit
(** Zero every counter, empty every histogram (buckets included), clear
    the trace, reset the event sequence to 0 and reset the {!Prof} span
    tree. Registrations and sinks survive: a sink added before [reset]
    keeps firing on events recorded after it, and is only ever removed
    by {!remove_sink} or by raising. Finally runs every {!on_reset}
    hook. *)

val on_reset : (unit -> unit) -> unit
(** Register a hook run at the end of every {!reset}. Layers above this
    one (the request tracer) keep state tied to the registry's lifetime
    but cannot be reset from here without a dependency cycle; the hook
    is how they ride along. Hooks are permanent, like registrations. *)

val metrics_json : unit -> Json.t
(** The snapshot as one JSON object keyed by metric name:
    [{"disk.seeks": {"type": "counter", "value": 12}, …}]; histograms
    carry their full summary. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_metrics : Format.formatter -> unit -> unit
(** A human-readable dump of the whole registry, one metric per line. *)
