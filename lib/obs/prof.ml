module Sim_clock = Alto_machine.Sim_clock

(* {2 The span tree}

   One global tree of nodes, one explicit stack of open spans. Opening a
   span finds (or creates) the child of the current node with that name,
   so repeated calls through the same code path accumulate into one node
   instead of growing the tree without bound. The root is implicit and
   never timed: it absorbs disk charges made outside any span. *)

type disk_charges = {
  mutable d_seek_us : int;
  mutable d_rotation_us : int;
  mutable d_transfer_us : int;
  mutable d_retry_us : int;
}

type node = {
  n_name : string;
  mutable n_calls : int;
  mutable n_total_us : int;
  n_disk : disk_charges;
  n_children : (string, node) Hashtbl.t;
}

let make_node name =
  {
    n_name = name;
    n_calls = 0;
    n_total_us = 0;
    n_disk = { d_seek_us = 0; d_rotation_us = 0; d_transfer_us = 0; d_retry_us = 0 };
    n_children = Hashtbl.create 4;
  }

let root = ref (make_node "root")
let stack : node list ref = ref []
let retry_depth = ref 0

let current () = match !stack with n :: _ -> n | [] -> !root

let child parent name =
  match Hashtbl.find_opt parent.n_children name with
  | Some n -> n
  | None ->
      let n = make_node name in
      Hashtbl.add parent.n_children name n;
      n

let reset () =
  root := make_node "root";
  stack := [];
  retry_depth := 0

let span clock name f =
  let node = child (current ()) name in
  node.n_calls <- node.n_calls + 1;
  let t0 = Sim_clock.now_us clock in
  stack := node :: !stack;
  let close () =
    (* Pop only our own frame: if [f] called {!reset}, the stack is
       already gone and the node is detached — charging it is harmless. *)
    (match !stack with n :: rest when n == node -> stack := rest | _ -> ());
    node.n_total_us <- node.n_total_us + (Sim_clock.now_us clock - t0)
  in
  match f () with
  | x ->
      close ();
      x
  | exception exn ->
      close ();
      raise exn

let note name =
  let node = child (current ()) name in
  node.n_calls <- node.n_calls + 1

(* {2 Disk-time attribution}

   [Drive] reports every microsecond of charged motion here, split into
   seek / rotational wait / transfer. While a retry ladder is running
   (bracketed by {!with_retry}) the whole charge is filed under the
   retry component instead: the first attempt's motion is the cost of
   the operation, everything after it is the cost of the fault. Summing
   the four components over the whole tree therefore reproduces the
   [disk.*] motion counters exactly. *)

let charge component us =
  if us > 0 then begin
    let d = (current ()).n_disk in
    if !retry_depth > 0 then d.d_retry_us <- d.d_retry_us + us
    else
      match component with
      | `Seek -> d.d_seek_us <- d.d_seek_us + us
      | `Rotation -> d.d_rotation_us <- d.d_rotation_us + us
      | `Transfer -> d.d_transfer_us <- d.d_transfer_us + us
  end

let charge_seek us = charge `Seek us
let charge_rotation us = charge `Rotation us
let charge_transfer us = charge `Transfer us

let with_retry f =
  incr retry_depth;
  match f () with
  | x ->
      decr retry_depth;
      x
  | exception exn ->
      decr retry_depth;
      raise exn

(* {2 Queries} *)

type snapshot = {
  name : string;
  calls : int;
  total_us : int;
  self_us : int;
  seek_us : int;
  rotation_us : int;
  transfer_us : int;
  retry_us : int;
  children : snapshot list;
}

let rec snap ~is_root n =
  let children =
    Hashtbl.fold (fun _ c acc -> snap ~is_root:false c :: acc) n.n_children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  let child_total = List.fold_left (fun acc c -> acc + c.total_us) 0 children in
  let total_us = if is_root then child_total else n.n_total_us in
  {
    name = n.n_name;
    calls = n.n_calls;
    total_us;
    self_us = max 0 (total_us - child_total);
    seek_us = n.n_disk.d_seek_us;
    rotation_us = n.n_disk.d_rotation_us;
    transfer_us = n.n_disk.d_transfer_us;
    retry_us = n.n_disk.d_retry_us;
    children;
  }

let tree () = snap ~is_root:true !root
let disk_us s = s.seek_us + s.rotation_us + s.transfer_us + s.retry_us

let rec flatten s = s :: List.concat_map flatten s.children

let find s name =
  List.find_opt (fun n -> n.name = name) (flatten s)

type disk_totals = { t_seek_us : int; t_rotation_us : int; t_transfer_us : int; t_retry_us : int }

let disk_totals () =
  List.fold_left
    (fun acc s ->
      {
        t_seek_us = acc.t_seek_us + s.seek_us;
        t_rotation_us = acc.t_rotation_us + s.rotation_us;
        t_transfer_us = acc.t_transfer_us + s.transfer_us;
        t_retry_us = acc.t_retry_us + s.retry_us;
      })
    { t_seek_us = 0; t_rotation_us = 0; t_transfer_us = 0; t_retry_us = 0 }
    (flatten (tree ()))

let rec node_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("calls", Json.Int s.calls);
      ("total_us", Json.Int s.total_us);
      ("self_us", Json.Int s.self_us);
      ( "disk",
        Json.Obj
          [
            ("seek_us", Json.Int s.seek_us);
            ("rotation_us", Json.Int s.rotation_us);
            ("transfer_us", Json.Int s.transfer_us);
            ("retry_us", Json.Int s.retry_us);
          ] );
      ("children", Json.List (List.map node_json s.children));
    ]

let to_json () = node_json (tree ())

let pp_node fmt ~depth s =
  Format.fprintf fmt "%s%-*s %6d calls  total %10d us  self %10d us  disk %d/%d/%d/%d@."
    (String.make (2 * depth) ' ')
    (max 1 (36 - (2 * depth)))
    s.name s.calls s.total_us s.self_us s.seek_us s.rotation_us s.transfer_us
    s.retry_us

let pp ?top fmt () =
  let t = tree () in
  let rec walk depth s =
    if depth > 0 then pp_node fmt ~depth:(depth - 1) s;
    List.iter (walk (depth + 1)) s.children
  in
  walk 0 t;
  match top with
  | None -> ()
  | Some n ->
      let hot =
        flatten t
        |> List.filter (fun s -> s.name <> "root")
        |> List.sort (fun a b -> compare b.self_us a.self_us)
        |> List.filteri (fun i _ -> i < n)
      in
      Format.fprintf fmt "top %d by self time:@." n;
      List.iter (fun s -> pp_node fmt ~depth:0 s) hot
