module Sim_clock = Alto_machine.Sim_clock

type context = { trace : int; span : int }

type span = {
  sp_id : int;
  sp_name : string;
  sp_start_us : int;
  mutable sp_end_us : int;  (* -1 while open *)
}

type trace = {
  tr_id : int;
  tr_name : string;
  tr_origin : string;
  tr_clock : Sim_clock.t;
  tr_start_us : int;
  mutable tr_end_us : int;  (* -1 while open *)
  mutable tr_status : string;  (* "" while open *)
  mutable tr_marks : (string * int) list;  (* newest first *)
  mutable tr_spans : span list;  (* newest first; the root is last *)
  mutable tr_seek_us : int;
  mutable tr_rot_us : int;
  mutable tr_xfer_us : int;
  mutable tr_park_at : int;  (* -1 when not parked *)
  mutable tr_wait_us : int;
  mutable tr_seen : string list;  (* remote keys already billed *)
}

let m_started = Obs.counter "trace.started"
let m_spans = Obs.counter "trace.spans"
let m_completed = Obs.counter "trace.completed"
let m_remote_dups = Obs.counter "trace.remote_dups"
let h_wait = Obs.histogram "trace.wait_us"
let h_service = Obs.histogram "trace.service_us"

(* Ids come from these counters alone — no wall clock, no randomness —
   so a replayed simulation mints the same ids and the export is
   byte-identical. *)
let next_trace = ref 1
let next_span = ref 1

let traces : (int, trace) Hashtbl.t = Hashtbl.create 64
let finished : int Queue.t = Queue.create ()  (* closed ids, oldest first *)
let retention = ref 1024
let cur : context option ref = ref None

(* The balance sheet: component microseconds charged under some context
   vs. none. Maintained at charge time, so it stays exact after the
   ring evicts old traces. Index 0 seek, 1 rotation, 2 transfer. *)
let att = [| 0; 0; 0 |]
let unt = [| 0; 0; 0 |]

let reset_state () =
  next_trace := 1;
  next_span := 1;
  Hashtbl.reset traces;
  Queue.clear finished;
  cur := None;
  Array.fill att 0 3 0;
  Array.fill unt 0 3 0

(* Every executable that traces also links this module, so the hook is
   registered before any workload can reset. *)
let () = Obs.on_reset reset_state

let find ctx = Hashtbl.find_opt traces ctx.trace
let is_open tr = String.equal tr.tr_status ""
let now tr = Sim_clock.now_us tr.tr_clock
let root_span tr = match List.rev tr.tr_spans with r :: _ -> r.sp_id | [] -> 0

let current () = !cur
let set_current c = cur := c

let with_current c f =
  let prior = !cur in
  cur := c;
  match f () with
  | x ->
      cur := prior;
      x
  | exception exn ->
      cur := prior;
      raise exn

let start ~clock ~origin ~name =
  let id = !next_trace in
  next_trace := id + 1;
  let sid = !next_span in
  next_span := sid + 1;
  let t0 = Sim_clock.now_us clock in
  let root = { sp_id = sid; sp_name = name; sp_start_us = t0; sp_end_us = -1 } in
  Hashtbl.replace traces id
    {
      tr_id = id;
      tr_name = name;
      tr_origin = origin;
      tr_clock = clock;
      tr_start_us = t0;
      tr_end_us = -1;
      tr_status = "";
      tr_marks = [ ("queued", t0) ];
      tr_spans = [ root ];
      tr_seek_us = 0;
      tr_rot_us = 0;
      tr_xfer_us = 0;
      tr_park_at = -1;
      tr_wait_us = 0;
      tr_seen = [];
    };
  Obs.incr m_started;
  Obs.incr m_spans;
  { trace = id; span = sid }

let mark ctx name =
  match find ctx with
  | Some tr when is_open tr -> tr.tr_marks <- (name, now tr) :: tr.tr_marks
  | _ -> ()

let finish ctx ~status =
  match find ctx with
  | Some tr when is_open tr ->
      let t1 = now tr in
      List.iter (fun sp -> if sp.sp_end_us < 0 then sp.sp_end_us <- t1) tr.tr_spans;
      (* An abandoned request that dies parked still waited: close the
         window at the moment of death. *)
      if tr.tr_park_at >= 0 then begin
        tr.tr_wait_us <- tr.tr_wait_us + (t1 - tr.tr_park_at);
        tr.tr_park_at <- -1
      end;
      tr.tr_end_us <- t1;
      tr.tr_status <- status;
      tr.tr_marks <- (status, t1) :: tr.tr_marks;
      if String.equal status "replied" || String.equal status "done" then begin
        Obs.incr m_completed;
        Obs.observe h_wait tr.tr_wait_us;
        Obs.observe h_service (max 0 (t1 - tr.tr_start_us - tr.tr_wait_us))
      end;
      Queue.push tr.tr_id finished;
      while Queue.length finished > !retention do
        Hashtbl.remove traces (Queue.pop finished)
      done
  | _ -> ()

let find_active ~origin =
  Hashtbl.fold
    (fun _ tr best ->
      if is_open tr && String.equal tr.tr_origin origin then
        match best with
        | Some b when b.tr_id >= tr.tr_id -> best
        | _ -> Some tr
      else best)
    traces None
  |> Option.map (fun tr -> { trace = tr.tr_id; span = root_span tr })

let parked ctx =
  match find ctx with
  | Some tr when is_open tr && tr.tr_park_at < 0 ->
      tr.tr_park_at <- now tr;
      tr.tr_marks <- (("disk-parked", tr.tr_park_at)) :: tr.tr_marks
  | _ -> ()

let served ctx =
  match find ctx with
  | Some tr when is_open tr && tr.tr_park_at >= 0 ->
      let t = now tr in
      tr.tr_wait_us <- tr.tr_wait_us + (t - tr.tr_park_at);
      tr.tr_park_at <- -1;
      tr.tr_marks <- ("sweep-served", t) :: tr.tr_marks
  | _ -> ()

(* Charges flow to the current trace if it is still retained, else to
   the untraced bucket: either way the global balance holds. A trace
   already finished (a timeout-abandoned request whose batch the sweep
   serves later) keeps absorbing its own motion — the work was done for
   that request, whether or not anyone is still waiting for it. *)
let charge k us =
  if us > 0 then
    match (match !cur with Some ctx -> find ctx | None -> None) with
    | Some tr ->
        (match k with
        | 0 -> tr.tr_seek_us <- tr.tr_seek_us + us
        | 1 -> tr.tr_rot_us <- tr.tr_rot_us + us
        | _ -> tr.tr_xfer_us <- tr.tr_xfer_us + us);
        att.(k) <- att.(k) + us
    | None -> unt.(k) <- unt.(k) + us

let charge_seek us = charge 0 us
let charge_rotation us = charge 1 us
let charge_transfer us = charge 2 us

let rebill_seek ~from_ ~to_ us =
  if us > 0 && from_ <> to_ then begin
    (match (match from_ with Some c -> find c | None -> None) with
    | Some tr ->
        tr.tr_seek_us <- tr.tr_seek_us - us;
        att.(0) <- att.(0) - us
    | None -> unt.(0) <- unt.(0) - us);
    match (match to_ with Some c -> find c | None -> None) with
    | Some tr ->
        tr.tr_seek_us <- tr.tr_seek_us + us;
        att.(0) <- att.(0) + us
    | None -> unt.(0) <- unt.(0) + us
  end

let attributed () = (att.(0), att.(1), att.(2))
let untraced () = (unt.(0), unt.(1), unt.(2))

let wire () = match !cur with Some c -> (c.trace, c.span) | None -> (0, 0)
let of_wire (t, s) = if t <= 0 then None else Some { trace = t; span = s }

let remote ctx ~key ~name f =
  match find ctx with
  | Some tr when is_open tr && not (List.mem key tr.tr_seen) ->
      tr.tr_seen <- key :: tr.tr_seen;
      let sid = !next_span in
      next_span := sid + 1;
      let sp = { sp_id = sid; sp_name = name; sp_start_us = now tr; sp_end_us = -1 } in
      tr.tr_spans <- sp :: tr.tr_spans;
      Obs.incr m_spans;
      (match with_current (Some { trace = ctx.trace; span = sid }) f with
      | x ->
          sp.sp_end_us <- now tr;
          x
      | exception exn ->
          sp.sp_end_us <- now tr;
          raise exn)
  | Some _ ->
      (* A duplicate, a resend already served, or a trace already
         closed: do the work, bill no one. *)
      Obs.incr m_remote_dups;
      with_current None f
  | None -> with_current None f

(* {2 Inspection and export} *)

type info = {
  id : int;
  name : string;
  origin : string;
  status : string;
  start_us : int;
  end_us : int;
  wait_us : int;
  service_us : int;
  seek_us : int;
  rotation_us : int;
  transfer_us : int;
  marks : (string * int) list;
}

let info_of tr =
  let open_ = is_open tr in
  let until = if open_ then now tr else tr.tr_end_us in
  let wait =
    tr.tr_wait_us + (if open_ && tr.tr_park_at >= 0 then until - tr.tr_park_at else 0)
  in
  {
    id = tr.tr_id;
    name = tr.tr_name;
    origin = tr.tr_origin;
    status = (if open_ then "open" else tr.tr_status);
    start_us = tr.tr_start_us;
    end_us = tr.tr_end_us;
    wait_us = wait;
    service_us = max 0 (until - tr.tr_start_us - wait);
    seek_us = tr.tr_seek_us;
    rotation_us = tr.tr_rot_us;
    transfer_us = tr.tr_xfer_us;
    marks = List.rev tr.tr_marks;
  }

let sorted_traces () =
  Hashtbl.fold (fun _ tr acc -> tr :: acc) traces []
  |> List.sort (fun a b -> compare a.tr_id b.tr_id)

let infos () = List.map info_of (sorted_traces ())

let active_count () =
  Hashtbl.fold (fun _ tr n -> if is_open tr then n + 1 else n) traces 0

let set_retention n =
  if n <= 0 then invalid_arg "Trace.set_retention: retention must be positive";
  retention := n;
  while Queue.length finished > n do
    Hashtbl.remove traces (Queue.pop finished)
  done

let info_json i =
  Json.Obj
    [
      ("id", Json.Int i.id);
      ("name", Json.String i.name);
      ("origin", Json.String i.origin);
      ("status", Json.String i.status);
      ("start_us", Json.Int i.start_us);
      ("end_us", Json.Int i.end_us);
      ("wait_us", Json.Int i.wait_us);
      ("service_us", Json.Int i.service_us);
      ("seek_us", Json.Int i.seek_us);
      ("rotation_us", Json.Int i.rotation_us);
      ("transfer_us", Json.Int i.transfer_us);
      ( "marks",
        Json.List
          (List.map
             (fun (m, t) -> Json.Obj [ ("mark", Json.String m); ("at_us", Json.Int t) ])
             i.marks) );
    ]

let flight_json ?(limit = 8) () =
  let all = infos () in
  let opened = List.filter (fun i -> String.equal i.status "open") all in
  let closed = List.filter (fun i -> not (String.equal i.status "open")) all in
  let drop = List.length closed - limit in
  let closed = List.filteri (fun k _ -> k >= drop) closed in
  Json.List (List.map info_json (opened @ closed))

(* Chrome's trace_event format: ts/dur in microseconds, one pid for the
   machine, one tid per trace, "M" metadata naming the thread, "X"
   complete events for spans, "i" instants for marks. *)
let chrome_json () =
  let events =
    List.concat_map
      (fun tr ->
        let i = info_of tr in
        let until = if is_open tr then now tr else tr.tr_end_us in
        let meta =
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int 1);
              ("tid", Json.Int tr.tr_id);
              ( "args",
                Json.Obj
                  [
                    ( "name",
                      Json.String (Printf.sprintf "%s: %s #%d" tr.tr_origin tr.tr_name tr.tr_id)
                    );
                  ] );
            ]
        in
        let span_event sp =
          let fin = if sp.sp_end_us < 0 then until else sp.sp_end_us in
          let args =
            if sp.sp_id = root_span tr then
              [
                ("origin", Json.String tr.tr_origin);
                ("status", Json.String i.status);
                ("wait_us", Json.Int i.wait_us);
                ("service_us", Json.Int i.service_us);
                ("seek_us", Json.Int i.seek_us);
                ("rotation_us", Json.Int i.rotation_us);
                ("transfer_us", Json.Int i.transfer_us);
              ]
            else [ ("span", Json.Int sp.sp_id) ]
          in
          Json.Obj
            [
              ("name", Json.String sp.sp_name);
              ("cat", Json.String "request");
              ("ph", Json.String "X");
              ("ts", Json.Int sp.sp_start_us);
              ("dur", Json.Int (max 0 (fin - sp.sp_start_us)));
              ("pid", Json.Int 1);
              ("tid", Json.Int tr.tr_id);
              ("args", Json.Obj args);
            ]
        in
        let mark_event (m, t) =
          Json.Obj
            [
              ("name", Json.String m);
              ("cat", Json.String "request");
              ("ph", Json.String "i");
              ("ts", Json.Int t);
              ("pid", Json.Int 1);
              ("tid", Json.Int tr.tr_id);
              ("s", Json.String "t");
            ]
        in
        (meta :: List.map span_event (List.rev tr.tr_spans))
        @ List.map mark_event i.marks)
      (sorted_traces ())
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]
