module Sim_clock = Alto_machine.Sim_clock

(* {2 Counters and histograms} *)

type counter = { c_name : string; mutable c_value : int }

(* Log-bucketed value counts, HDR style with 3 mantissa bits: values
   below 16 get a bucket each (exact), larger values share an octave
   split into 8 sub-buckets, so a bucket is never wider than 12.5% of
   its lower bound. 480 buckets cover every non-negative OCaml int;
   negatives (histograms admit them) clamp into bucket 0 and the
   percentile answer is clamped back into [min, max]. *)
let bucket_count = 480

let bucket_index v =
  if v < 16 then if v < 0 then 0 else v
  else begin
    let rec msb acc v = if v > 1 then msb (acc + 1) (v lsr 1) else acc in
    let o = msb 0 v in
    16 + ((o - 4) * 8) + ((v lsr (o - 3)) land 7)
  end

let bucket_floor idx =
  if idx < 16 then idx
  else
    let o = 4 + ((idx - 16) / 8) in
    let sub = (idx - 16) mod 8 in
    (8 + sub) lsl (o - 3)

type hist_state = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

type histogram = hist_state

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

type registered = R_counter of counter | R_histogram of hist_state

(* The registry proper. Insertion order is irrelevant; snapshots sort. *)
let registry : (string, registered) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (R_counter c) -> c
  | Some (R_histogram _) ->
      invalid_arg (Printf.sprintf "Obs.counter: %S is registered as a histogram" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add registry name (R_counter c);
      c

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Obs.add: counter %S is monotonic" c.c_name)
  else c.c_value <- c.c_value + n

let counter_value c = c.c_value
let counter_name c = c.c_name

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (R_histogram h) -> h
  | Some (R_counter _) ->
      invalid_arg (Printf.sprintf "Obs.histogram: %S is registered as a counter" name)
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0;
          h_min = 0;
          h_max = 0;
          h_buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.add registry name (R_histogram h);
      h

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let percentile h p =
  if h.h_count = 0 then 0
  else begin
    let rank = min h.h_count (max 1 (int_of_float (ceil (p *. float_of_int h.h_count)))) in
    let rec walk i seen =
      let seen = seen + h.h_buckets.(i) in
      if seen >= rank then bucket_floor i else walk (i + 1) seen
    in
    (* The bucket floor under-reads by at most one bucket width; clamping
       into [min, max] restores exactness for single-bucket tails and for
       the negative values the floor cannot represent. *)
    max h.h_min (min h.h_max (walk 0 0))
  end

let summary h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    mean = (if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count);
    p50 = percentile h 0.50;
    p90 = percentile h 0.90;
    p99 = percentile h 0.99;
  }

let histogram_name h = h.h_name

(* {2 Event trace: a ring buffer plus sinks} *)

type field_value = I of int | S of string | B of bool

type event = {
  seq : int;
  ts_us : int;
  name : string;
  fields : (string * field_value) list;
}

type sink_id = int

type trace_state = {
  mutable ring : event option array;
  mutable head : int;  (* Next write position. *)
  mutable stored : int;
  mutable next_seq : int;
  mutable sinks : (sink_id * (event -> unit)) list;
  mutable next_sink : int;
}

let tr =
  { ring = Array.make 1024 None; head = 0; stored = 0; next_seq = 0; sinks = []; next_sink = 0 }

let trace_capacity () = Array.length tr.ring

let trace () =
  let cap = Array.length tr.ring in
  let oldest = (tr.head - tr.stored + cap) mod cap in
  List.init tr.stored (fun i ->
      match tr.ring.((oldest + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let set_trace_capacity n =
  if n <= 0 then invalid_arg "Obs.set_trace_capacity: capacity must be positive"
  else begin
    let keep = trace () in
    let keep = List.filteri (fun i _ -> i >= List.length keep - n) keep in
    let ring = Array.make n None in
    List.iteri (fun i e -> ring.(i) <- Some e) keep;
    tr.ring <- ring;
    tr.stored <- List.length keep;
    tr.head <- tr.stored mod n
  end

let clear_trace () =
  Array.fill tr.ring 0 (Array.length tr.ring) None;
  tr.head <- 0;
  tr.stored <- 0

let add_sink f =
  let id = tr.next_sink in
  tr.next_sink <- id + 1;
  tr.sinks <- (id, f) :: tr.sinks;
  id

let remove_sink id = tr.sinks <- List.filter (fun (i, _) -> i <> id) tr.sinks

let event ?clock ?(fields = []) name =
  let ts_us = match clock with Some c -> Sim_clock.now_us c | None -> 0 in
  let e = { seq = tr.next_seq; ts_us; name; fields } in
  tr.next_seq <- tr.next_seq + 1;
  let cap = Array.length tr.ring in
  tr.ring.(tr.head) <- Some e;
  tr.head <- (tr.head + 1) mod cap;
  if tr.stored < cap then tr.stored <- tr.stored + 1;
  (* Feed the taps; a sink that raises is dropped rather than allowed to
     take the instrumented subsystem down with it. *)
  List.iter
    (fun (id, f) -> try f e with _ -> remove_sink id)
    tr.sinks

(* {2 Spans} *)

let time clock name f =
  let h = histogram name in
  let t0 = Sim_clock.now_us clock in
  event ~clock (name ^ ".begin");
  let close () =
    let elapsed = Sim_clock.now_us clock - t0 in
    observe h elapsed;
    event ~clock ~fields:[ ("elapsed_us", I elapsed) ] (name ^ ".end")
  in
  (* Every timed site doubles as a causal span, so the profiler sees the
     whole [Obs.time] surface without any call-site changes. *)
  match Prof.span clock name f with
  | x ->
      close ();
      x
  | exception exn ->
      close ();
      raise exn

(* {2 The registry} *)

type metric = Counter of int | Histogram of summary

let snapshot () =
  Hashtbl.fold
    (fun name r acc ->
      let m =
        match r with
        | R_counter c -> Counter c.c_value
        | R_histogram h -> Histogram (summary h)
      in
      (name, m) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  match Hashtbl.find_opt registry name with
  | None -> None
  | Some (R_counter c) -> Some (Counter c.c_value)
  | Some (R_histogram h) -> Some (Histogram (summary h))

(* Layers above this one (the request tracer) keep global state keyed to
   the registry's lifetime but cannot be called from here without a
   dependency cycle; they register a hook instead. Hooks run after the
   registry is zeroed, so a hook may re-register metrics. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  Hashtbl.iter
    (fun _ r ->
      match r with
      | R_counter c -> c.c_value <- 0
      | R_histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- 0;
          h.h_max <- 0;
          Array.fill h.h_buckets 0 bucket_count 0)
    registry;
  clear_trace ();
  tr.next_seq <- 0;
  Prof.reset ();
  List.iter (fun f -> f ()) !reset_hooks

let summary_json s =
  Json.Obj
    [
      ("type", Json.String "histogram");
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ("mean", Json.Float s.mean);
      ("p50", Json.Int s.p50);
      ("p90", Json.Int s.p90);
      ("p99", Json.Int s.p99);
    ]

let metrics_json () =
  Json.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter v -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int v) ]
           | Histogram s -> summary_json s ))
       (snapshot ()))

let pp_summary fmt s =
  Format.fprintf fmt "count %d, sum %d, min %d, max %d, mean %.1f, p50 %d, p90 %d, p99 %d"
    s.count s.sum s.min s.max s.mean s.p50 s.p90 s.p99

let pp_metrics fmt () =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter v -> Format.fprintf fmt "%-36s %d@." name v
      | Histogram s -> Format.fprintf fmt "%-36s %a@." name pp_summary s)
    (snapshot ())
