(** Causal span profiler.

    One process-wide tree of {e spans} — named, nested stretches of
    simulated time — plus a per-span breakdown of disk time into
    seek / rotational-wait / transfer / retry components reported by
    the drive layer. Where {!Obs} answers "how much, in aggregate",
    this module answers "on whose behalf": every scheduler batch, retry
    rung and patrol slice is charged to the innermost open span, so the
    tree reads as a causal profile of the machine.

    {!Obs.time} opens a span named after its histogram, so every
    existing span-timer site participates without change; {!span} is
    the direct entry point for structural spans that do not want a
    histogram of their own.

    Like the {!Obs} registry the tree is global and survives across
    operations; {!Obs.reset} resets it (and tests that need isolation
    call that). Repeated spans with the same name under the same parent
    accumulate into one node, so the tree is bounded by the number of
    distinct code paths, not by the number of operations. *)

module Sim_clock = Alto_machine.Sim_clock

(** {1 Recording} *)

val span : Sim_clock.t -> string -> (unit -> 'a) -> 'a
(** [span clock name f] runs [f ()] with [name] pushed as the innermost
    span; its simulated elapsed time accumulates into the node. The
    span closes (and the node is charged) even when [f] raises. *)

val note : string -> unit
(** Bump the call count of a zero-duration child of the current span —
    used for marks like cache hits that have a cause but no cost. *)

(** {1 Disk-time attribution}

    Called by the drive layer; not meant for general use. Charges go to
    the innermost open span (the root when none is open). *)

val charge_seek : int -> unit
val charge_rotation : int -> unit
val charge_transfer : int -> unit

val with_retry : (unit -> 'a) -> 'a
(** While [f] runs, any motion charged lands in the current span's
    {e retry} component instead of its own kind: the retry ladder
    brackets everything after the first failed attempt with this, so
    retry cost is separable from first-attempt cost. *)

(** {1 Queries} *)

type snapshot = {
  name : string;
  calls : int;
  total_us : int;  (** Simulated time spent inside this span. *)
  self_us : int;  (** [total_us] minus the children's [total_us]. *)
  seek_us : int;
  rotation_us : int;
  transfer_us : int;
  retry_us : int;
  children : snapshot list;  (** Sorted by name — deterministic. *)
}

val tree : unit -> snapshot
(** The whole tree under the implicit root. The root's [total_us] is
    the sum of its children; its own disk components hold charges made
    outside any span. *)

val flatten : snapshot -> snapshot list
(** Every node of the subtree, depth first. *)

val find : snapshot -> string -> snapshot option
(** First node with this name, depth first. *)

val disk_us : snapshot -> int
(** This node's four disk components summed (children excluded). *)

type disk_totals = {
  t_seek_us : int;
  t_rotation_us : int;
  t_transfer_us : int;
  t_retry_us : int;
}

val disk_totals : unit -> disk_totals
(** The four components summed over the whole tree. Equals the drive's
    [disk.seek_us] / [disk.rotational_wait_us] / [disk.transfer_us]
    counters split by attribution: every charged microsecond lands in
    exactly one node. *)

val to_json : unit -> Json.t

val pp : ?top:int -> Format.formatter -> unit -> unit
(** The tree, indented; with [~top:n] also the [n] hottest spans by
    self time. *)

val reset : unit -> unit
(** Drop the tree and any open spans. Called by {!Obs.reset}. *)
