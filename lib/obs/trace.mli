(** Request-scoped causal tracing.

    {!Prof} answers "where did the machine's time go" with one global
    span tree: every disk microsecond lands in the innermost span, and
    E17 proves the tree balances the drive's motion counters exactly.
    But once the standing elevator serves many conversations in one
    C-SCAN sweep, the innermost span belongs to the {e sweep}, not to
    any request — the aggregate view cannot say what one GET cost or
    where it waited. This module keeps the same 100%-attribution
    discipline per {e request}: a trace is minted when a client queues
    an operation, its context rides the activity across every
    [Yield]/[Await_disk] switch and over the network envelope, the
    drive's motion charges flow to whichever trace is current (or to an
    explicit untraced bucket), and the elevator pro-rates each shared
    cylinder-entry seek across the requests it served. The invariant,
    gated by E22 exactly as E17 gates the span tree:

    {v attributed + untraced = disk.seek_us + disk.rotational_wait_us
                               + disk.transfer_us v}

    Identifiers are minted from module-local sequence counters — no
    wall clock, no randomness — so a replayed simulation produces
    byte-identical exports. {!Obs.reset} rewinds everything here too
    (via {!Obs.on_reset}).

    A trace carries a timeline of {e marks} (queued → admitted →
    disk-parked → sweep-served → replied), per-trace disk component
    totals, and an exact queue-wait account: {!parked} stamps the
    moment a request's batch joins the standing queue, {!served} the
    moment the sweep first reaches it. Completed traces are retained in
    a bounded ring ({!set_retention}) for the executive's [requests]
    command, the flight recorder, and the Chrome [trace_event] export;
    the attribution accumulators are exact regardless of eviction. *)

module Sim_clock = Alto_machine.Sim_clock

type context = { trace : int; span : int }
(** A point in some trace: which request, and which causal span within
    it. Contexts are small and immutable — cheap to save and restore at
    every activity switch, cheap to put in a packet envelope. *)

(** {1 Lifecycle} *)

val start : clock:Sim_clock.t -> origin:string -> name:string -> context
(** Mint a new trace with a fresh root span and a "queued" mark at the
    clock's now. [origin] names the requesting station (the key
    {!find_active} matches on); [name] describes the operation
    (["get a.txt"]). Counted in [trace.started]; every span opened
    (root included) counts in [trace.spans]. *)

val finish : context -> status:string -> unit
(** Close the trace: end every open span, absorb any un-served park
    time into the wait account, stamp the end time and a final mark
    named [status]. Idempotent — finishing a finished or unknown trace
    is a no-op, which is what lets duplicated or delayed replies land
    without double-counting. When [status] is ["replied"] or ["done"]
    the trace counts in [trace.completed] and its wait/service split is
    observed into [trace.wait_us] / [trace.service_us] (service =
    lifetime − wait). *)

val mark : context -> string -> unit
(** Add a named instant to the trace's timeline at its clock's now.
    No-op on a finished or unknown trace. *)

val find_active : origin:string -> context option
(** The newest open trace minted with this origin — how a client whose
    reply never came (so it holds no reply context) closes the trace it
    abandoned. *)

(** {1 The current context}

    One global slot, saved and restored by the activity scheduler at
    every switch — the simulation is single-threaded, so "current"
    means "the request the machine is working for right now". *)

val current : unit -> context option
val set_current : context option -> unit

val with_current : context option -> (unit -> 'a) -> 'a
(** Run with the slot set, restoring the previous value on the way out
    (exceptions included). *)

(** {1 Queue-wait accounting} *)

val parked : context -> unit
(** The request's batch joined the standing queue: stamp the park time
    and mark ["disk-parked"]. No-op if already parked or finished. *)

val served : context -> unit
(** A sweep reached the request: accrue now − park into the wait
    account, mark ["sweep-served"]. No-op unless parked — so when one
    trace has many waiters in a sweep, only the first serve closes the
    wait window. *)

(** {1 Motion charges}

    Called by the drive alongside the {!Prof} charges, with the same
    microsecond amounts: the two accountings see identical totals. *)

val charge_seek : int -> unit
val charge_rotation : int -> unit
val charge_transfer : int -> unit

val rebill_seek : from_:context option -> to_:context option -> int -> unit
(** Move seek microseconds between per-trace accounts ([None] is the
    untraced bucket) without changing the global total — the elevator's
    instrument for pro-rating a shared cylinder-entry seek across the
    requests of one run. *)

val attributed : unit -> int * int * int
(** (seek, rotation, transfer) microseconds charged under some context
    since the last reset — exact even after ring eviction. *)

val untraced : unit -> int * int * int
(** The same components charged while no context was current. *)

(** {1 The wire}

    Contexts cross the network as a plain id pair in the packet
    envelope; [(0, 0)] means "no context" (trace ids start at 1). The
    pair is just ids — a duplicated or delayed packet carries the same
    pair, and resolving it back through {!of_wire} plus the idempotent
    {!finish}/{!remote} machinery is what makes propagation safe under
    a lying wire. *)

val wire : unit -> int * int
(** The current context as an id pair, [(0, 0)] when none. *)

val of_wire : int * int -> context option

(** {1 Remote work} *)

val remote : context -> key:string -> name:string -> (unit -> 'a) -> 'a
(** [remote ctx ~key ~name f] runs [f] as a child span of [ctx] — the
    responder's side of a wire request. [key] identifies the logical
    request (sequence number + responder name): the first arrival bills
    the trace, and any duplicate or resent copy runs with {e no}
    context (its motion goes untraced, counted in [trace.remote_dups])
    so a lying wire cannot double-bill a trace. A finished or unknown
    trace also runs untraced. *)

(** {1 Inspection and export} *)

type info = {
  id : int;
  name : string;
  origin : string;
  status : string;  (** ["open"] until finished, then the final status. *)
  start_us : int;
  end_us : int;  (** -1 while open. *)
  wait_us : int;
  service_us : int;  (** Lifetime − wait; for open traces, so far. *)
  seek_us : int;
  rotation_us : int;
  transfer_us : int;
  marks : (string * int) list;  (** Oldest first. *)
}

val infos : unit -> info list
(** Every retained trace, ascending id (open and closed alike). *)

val active_count : unit -> int

val set_retention : int -> unit
(** Bound the finished-trace ring (default 1024), trimming the oldest
    now if needed. Open traces are never evicted. Raises
    [Invalid_argument] when not positive. *)

val chrome_json : unit -> Json.t
(** Every retained trace as Chrome [trace_event] JSON: one thread per
    trace (named by a metadata event), an "X" complete event per span
    with the disk/wait decomposition in [args], an "i" instant per
    mark. Loads directly in Chrome's trace viewer. *)

val flight_json : ?limit:int -> unit -> Json.t
(** For the flight recorder: every open trace plus the most recent
    [limit] (default 8) closed ones, oldest first, as JSON objects. *)
