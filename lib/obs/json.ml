type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    (* Always a valid JSON number: keep a decimal point or exponent so
       the value cannot be mistaken for an integer downstream. *)
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let atom_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String _ | List _ | Obj _ -> assert false

let rec pp fmt = function
  | (Null | Bool _ | Int _ | Float _) as a -> Format.pp_print_string fmt (atom_string a)
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      escape_to buf s;
      Format.pp_print_string fmt (Buffer.contents buf)
  | List [] -> Format.pp_print_string fmt "[]"
  | List xs ->
      Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp)
        xs
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
      let pp_field fmt (k, v) =
        let kbuf = Buffer.create (String.length k + 2) in
        escape_to kbuf k;
        Format.fprintf fmt "@[<hov 2>%s:@ %a@]" (Buffer.contents kbuf) pp v
      in
      Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp_field)
        fields

let to_channel oc t =
  let fmt = Format.formatter_of_out_channel oc in
  Format.fprintf fmt "%a@." pp t
