(** A minimal JSON tree and printer.

    The observability layer and the benchmark harness emit
    machine-readable snapshots (metric registries, experiment tables)
    without pulling a JSON dependency into the system. Only emission is
    provided — nothing in the repository parses JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. Strings are escaped per RFC 8259;
    non-finite floats render as [null]. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering for humans (two-space indent). *)

val to_channel : out_channel -> t -> unit
(** {!pp} onto a channel, with a trailing newline. *)
