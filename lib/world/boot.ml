module Word = Alto_machine.Word
module Cpu = Alto_machine.Cpu
module Sector = Alto_disk.Sector
module Drive = Alto_disk.Drive
module Reliable = Alto_disk.Reliable
module Disk_address = Alto_disk.Disk_address
module Fs = Alto_fs.Fs
module File = Alto_fs.File
module File_id = Alto_fs.File_id
module Page = Alto_fs.Page

type error =
  | No_boot_record
  | Boot_file_missing of Page.full_name
  | World_error of World.error

let pp_error fmt = function
  | No_boot_record -> Format.pp_print_string fmt "no boot record at sector 0"
  | Boot_file_missing fn ->
      Format.fprintf fmt "boot record points at %a but the file is not there"
        Page.pp_full_name fn
  | World_error e -> World.pp_error fmt e

(* The boot record's value: magic, then the boot world's full name. *)
let record_magic = 0xB007

let install fs file =
  let fn = File.leader_name file in
  let value = Array.make Sector.value_words Word.zero in
  value.(0) <- Word.of_int record_magic;
  let w0, w1, v = File_id.to_words fn.Page.abs.Page.fid in
  value.(1) <- w0;
  value.(2) <- w1;
  value.(3) <- v;
  value.(4) <- Disk_address.to_word fn.Page.addr;
  (* Sector 0 carries its own label so the sweep sees it as live. *)
  let label =
    Alto_fs.Label.make
      ~fid:(File_id.make ~serial:3 ~version:1 ())
      ~page:0 ~length:10 ~next:Disk_address.nil ~prev:Disk_address.nil
  in
  match
    Reliable.run (Fs.drive fs) Fs.boot_address
      { Drive.op_none with label = Some Drive.Write; value = Some Drive.Write }
      ~label:(Alto_fs.Label.to_words label) ~value ()
  with
  | Ok () -> Ok ()
  | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
      Error No_boot_record

let boot_file fs =
  let value = Array.make Sector.value_words Word.zero in
  match
    Reliable.run (Fs.drive fs) Fs.boot_address
      { Drive.op_none with value = Some Drive.Read }
      ~value ()
  with
  | Error (Drive.Bad_sector | Drive.Check_mismatch _ | Drive.Transient _) ->
      Error No_boot_record
  | Ok () ->
      if Word.to_int value.(0) <> record_magic then Error No_boot_record
      else (
        match File_id.of_words value.(1) value.(2) value.(3) with
        | Error _ -> Error No_boot_record
        | Ok fid ->
            Ok (Page.full_name fid ~page:0 ~addr:(Disk_address.of_word value.(4))))

let boot fs cpu =
  (* A pack that mounts dirty crashed. Adopt the flight record the dying
     machine sealed (recovery writes over the volume, so read the black
     box first), then finish the patrol lap that was in flight — bounded
     by the unswept tail — before trusting the volume with a world; a
     full scavenge stays the cure for a pack that will not mount at all. *)
  if Fs.dirty fs then begin
    ignore (Alto_fs.Flight.adopt fs : string option);
    ignore (Alto_fs.Patrol.recover fs : Alto_fs.Patrol.recovery)
  end;
  match boot_file fs with
  | Error e -> Error e
  | Ok fn -> (
      match File.open_leader fs fn with
      | Error _ -> Error (Boot_file_missing fn)
      | Ok file -> (
          match World.in_load cpu file ~message:[||] with
          | Ok () -> Ok ()
          | Error e -> Error (World_error e)))
