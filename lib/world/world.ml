module Word = Alto_machine.Word
module Memory = Alto_machine.Memory
module Cpu = Alto_machine.Cpu
module File = Alto_fs.File
module Fs = Alto_fs.Fs
module Obs = Alto_obs.Obs

let m_outloads = Obs.counter "world.outloads"
let m_inloads = Obs.counter "world.inloads"
let m_emergency_outloads = Obs.counter "world.emergency_outloads"
let h_image_words = Obs.histogram "world.image_words"

let file_clock file = Fs.clock (File.fs file)

type error = File_error of File.error | Bad_state of string | Message_too_long

let pp_error fmt = function
  | File_error e -> File.pp_error fmt e
  | Bad_state msg -> Format.fprintf fmt "not a machine state: %s" msg
  | Message_too_long -> Format.pp_print_string fmt "message exceeds 20 words"

let max_message_words = 20
let message_area = 16

(* State image layout (word offsets):
     0     magic          3-8    registers (PC, FP, AC0-3)
     1     format version 9-10   memory size (hi/lo)
     2     register count 11     reserved
     12..  the 64K memory image *)
let magic = 0xA1F0
let version = 1
let header_words = 12
let memory_offset = header_words
let state_file_words = header_words + Memory.size

let ( let* ) = Result.bind
let file_err r = Result.map_error (fun e -> File_error e) r

let string_of_word_array ws = Word.string_of_words ws ~len:(2 * Array.length ws)

let words_of_bytes bytes ~pos ~nwords =
  Array.init nwords (fun i ->
      Word.of_char_pair (Bytes.get bytes (pos + (2 * i))) (Bytes.get bytes (pos + (2 * i) + 1)))

let image_of ~registers memory =
  let header = Array.make header_words Word.zero in
  header.(0) <- Word.of_int magic;
  header.(1) <- Word.of_int version;
  header.(2) <- Word.of_int Cpu.register_count;
  Array.blit registers 0 header 3 Cpu.register_count;
  header.(9) <- Word.of_int (Memory.size lsr 16);
  header.(10) <- Word.of_int Memory.size;
  Array.concat [ header; Memory.read_block memory ~pos:0 ~len:Memory.size ]

let write_image file image =
  let data = string_of_word_array image in
  let* () =
    (* Trim any excess so the file is exactly one state image. *)
    if File.byte_length file > String.length data then
      file_err (File.truncate file ~len:(String.length data))
    else Ok ()
  in
  let* () = file_err (File.write_bytes file ~pos:0 data) in
  file_err (File.flush_leader file)

let timed_write_image ~span file image =
  Obs.observe h_image_words (Array.length image);
  Obs.time (file_clock file) span (fun () -> write_image file image)

let out_load cpu file =
  Obs.incr m_outloads;
  let r =
    timed_write_image ~span:"world.outload_us" file
      (image_of ~registers:(Cpu.registers cpu) (Cpu.memory cpu))
  in
  (* A completed OutLoad is a consistency point: seal a flight record
     (before the clean flag — the write dirties the volume), then the
     world and the volume agree and the pack may declare itself cleanly
     shut down. Best effort — a failed flush merely leaves the flag set,
     and the next boot pays a bounded recovery scan it did not need. *)
  (match r with
  | Ok () ->
      let fs = File.fs file in
      Alto_fs.Flight.flush ~reason:"outload" fs;
      (match Fs.mark_clean fs with Ok () | Error _ -> ())
  | Error _ -> ());
  r

let emergency_out_load memory file =
  Obs.incr m_emergency_outloads;
  timed_write_image ~span:"world.outload_us" file
    (image_of ~registers:(Array.make Cpu.register_count Word.zero) memory)

let read_header file =
  let* bytes = file_err (File.read_bytes file ~pos:0 ~len:(2 * header_words)) in
  if Bytes.length bytes < 2 * header_words then Error (Bad_state "file too short")
  else
    let header = words_of_bytes bytes ~pos:0 ~nwords:header_words in
    if Word.to_int header.(0) <> magic then Error (Bad_state "bad magic")
    else if Word.to_int header.(1) <> version then Error (Bad_state "unknown version")
    else if Word.to_int header.(2) <> Cpu.register_count then
      Error (Bad_state "register file size mismatch")
    else if
      (Word.to_int header.(9) lsl 16) lor Word.to_int header.(10) <> Memory.size
    then Error (Bad_state "memory size mismatch")
    else Ok header

let peek_registers file =
  let* header = read_header file in
  Ok (Array.sub header 3 Cpu.register_count)

let in_load cpu file ~message =
  if Array.length message > max_message_words then Error Message_too_long
  else begin
    Obs.incr m_inloads;
    Obs.time (file_clock file) "world.inload_us" @@ fun () ->
    let* _header = read_header file in
    let* bytes =
      file_err (File.read_bytes file ~pos:(2 * memory_offset) ~len:(2 * Memory.size))
    in
    if Bytes.length bytes < 2 * Memory.size then
      Error (Bad_state "memory image truncated")
    else begin
      let memory = Cpu.memory cpu in
      Memory.write_block memory ~pos:0 (words_of_bytes bytes ~pos:0 ~nwords:Memory.size);
      let* registers = peek_registers file in
      Cpu.load_registers cpu registers;
      (* Deliver the message into the revived world. *)
      Memory.write memory (message_area - 1) (Word.of_int (Array.length message));
      Memory.fill memory ~pos:message_area ~len:max_message_words Word.zero;
      Memory.write_block memory ~pos:message_area message;
      Cpu.set_ac cpu 1 (Word.of_int message_area);
      (* The revived world inherits the machine, not the old world's
         in-core state: flush the old world's delayed writes (they were
         acknowledged; the swap must not lose them), then drop every
         buffered track and verified label, as a real inload drops the
         whole address space. *)
      ignore (Alto_fs.Bio.flush (Fs.bio (File.fs file)));
      Alto_fs.Bio.clear (Fs.bio (File.fs file));
      Alto_fs.Label_cache.clear (Fs.label_cache (File.fs file));
      Ok ()
    end
  end

let read_saved_memory file ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Memory.size then
    invalid_arg "World.read_saved_memory: range outside the image";
  let* bytes = file_err (File.read_bytes file ~pos:(2 * (memory_offset + pos)) ~len:(2 * len)) in
  if Bytes.length bytes < 2 * len then Error (Bad_state "image truncated")
  else Ok (words_of_bytes bytes ~pos:0 ~nwords:len)

let write_saved_memory file ~pos ws =
  if pos < 0 || pos + Array.length ws > Memory.size then
    invalid_arg "World.write_saved_memory: range outside the image";
  file_err (File.write_bytes file ~pos:(2 * (memory_offset + pos)) (string_of_word_array ws))
